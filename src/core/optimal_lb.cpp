#include "core/optimal_lb.hpp"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "topo/distance_cache.hpp"
#include "topo/fault_overlay.hpp"
#include "topo/hypercube.hpp"
#include "topo/torus_mesh.hpp"

namespace topomap::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Plane entries holding FaultOverlay::kUnreachable price as +infinity, so
/// infeasible placements lose every comparison instead of wrapping.
inline double dist_cost(std::uint16_t d) {
  return d == topo::FaultOverlay::kUnreachable ? kInf : static_cast<double>(d);
}

/// The static problem view shared (read-only) by every root subtree.
struct Instance {
  const graph::TaskGraph* g = nullptr;
  const topo::DistanceCache* plane = nullptr;
  int n = 0;  // tasks
  int p = 0;  // processors (usable marked below)
  int usable_count = 0;
  std::vector<char> usable;  // per processor: alive and assignable
  std::vector<int> order;    // depth -> task id (descending comm, ties id)
  // Per depth d: edges from order[d] to earlier-placed tasks, as
  // (earlier depth, bytes), ascending by depth — the exact incremental
  // cost terms, accumulated in one fixed order on every path.
  std::vector<std::vector<std::pair<int, double>>> back_edges;
  // suffix_pair_bound[d]: sorted partial-assignment bound on the edges
  // whose *both* endpoints sit at depth >= d.  An injective assignment
  // sends distinct edges to distinct processor pairs, so pairing the
  // suffix's byte weights (descending) with the machine's globally
  // smallest pairwise distances (ascending) never exceeds any completion's
  // cost.
  std::vector<double> suffix_pair_bound;
  // suffix_bytes_desc[d]: those same suffix byte weights, descending — used
  // to re-price the bound against the *free* processors' pair distances
  // when the free set is small enough to enumerate per node.
  std::vector<std::vector<double>> suffix_bytes_desc;
  long long per_root_budget = 0;
};

/// Mutable state of one root subtree's depth-first search.
struct Search {
  std::vector<int> assigned;  // depth -> processor
  std::vector<char> in_use;   // per processor
  double best = kInf;         // incumbent cost (strictly improving)
  std::vector<int> best_assigned;
  long long nodes = 0;
  long long pruned = 0;
  bool budget_exceeded = false;

  explicit Search(const Instance& in)
      : assigned(static_cast<std::size_t>(in.n), -1),
        in_use(static_cast<std::size_t>(in.p), 0) {}
};

/// Exact cost the task at `depth` adds when placed on q.
double incremental_cost(const Instance& in, const Search& st, int depth,
                        int q) {
  double cost = 0.0;
  const std::uint16_t* qrow = in.plane->row(q);
  for (const auto& [vd, bytes] : in.back_edges[static_cast<std::size_t>(depth)])
    cost += bytes * dist_cost(qrow[st.assigned[static_cast<std::size_t>(vd)]]);
  return cost;
}

/// Free sets up to this size have their pairwise distances enumerated per
/// node to re-price the suffix bound; larger sets fall back to the
/// precomputed whole-machine prefix.  Covers every n == p plateau instance
/// the cap admits while keeping the per-node work trivial.
constexpr int kFreePairLimit = 24;

/// Admissible lower bound on completing the partial assignment of depths
/// [0, d).  Three terms:
///   cross   edges between a placed and an unplaced task — the larger of
///           (a) each frontier task at its individually cheapest free
///           processor (tasks may share a processor, so admissible) and
///           (b) the k smallest per-processor column minima, k = frontier
///           tasks (the frontier occupies k *distinct* free processors, so
///           its cost is at least the k cheapest columns' minima);
///   suffix  edges with both endpoints unplaced — descending byte weights
///           priced against ascending pair distances (rearrangement bound),
///           over the free processors when the free set is small, over the
///           whole machine otherwise.
/// On a clique mapped onto the whole machine both terms are exact, so the
/// cost plateau prunes at the root instead of exploding factorially.
double frontier_bound(const Instance& in, const Search& st, int d) {
  // --- suffix term -------------------------------------------------------
  const std::vector<double>& bytes_desc =
      in.suffix_bytes_desc[static_cast<std::size_t>(d)];
  double suffix = in.suffix_pair_bound[static_cast<std::size_t>(d)];
  const int free_count = in.usable_count - d;  // placed procs are usable
  if (!bytes_desc.empty() && free_count <= kFreePairLimit) {
    std::vector<double> free_pairs;
    std::vector<int> free_procs;
    for (int q = 0; q < in.p; ++q)
      if (!st.in_use[static_cast<std::size_t>(q)] &&
          in.usable[static_cast<std::size_t>(q)])
        free_procs.push_back(q);
    for (std::size_t i = 0; i < free_procs.size(); ++i) {
      const std::uint16_t* row =
          in.plane->row(free_procs[i]);
      for (std::size_t j = i + 1; j < free_procs.size(); ++j) {
        const double dcost = dist_cost(row[free_procs[j]]);
        if (dcost < kInf) free_pairs.push_back(dcost);
      }
    }
    if (bytes_desc.size() > free_pairs.size()) return kInf;  // infeasible
    std::sort(free_pairs.begin(), free_pairs.end());
    double repriced = 0.0;
    for (std::size_t i = 0; i < bytes_desc.size(); ++i)
      repriced += bytes_desc[i] * free_pairs[i];
    // Free pairs are a subset of all pairs, so this is never looser.
    suffix = std::max(suffix, repriced);
  }
  double bound = suffix;

  // --- cross term --------------------------------------------------------
  // (placed-neighbour row, bytes) pairs of the frontier task under price.
  std::vector<std::pair<const std::uint16_t*, double>> placed;
  std::vector<double> col_min(static_cast<std::size_t>(in.p), kInf);
  double row_sum = 0.0;
  int frontier = 0;
  for (int ud = d; ud < in.n; ++ud) {
    placed.clear();
    for (const auto& [vd, bytes] : in.back_edges[static_cast<std::size_t>(ud)]) {
      if (vd >= d) continue;
      placed.emplace_back(
          in.plane->row(st.assigned[static_cast<std::size_t>(vd)]), bytes);
    }
    if (placed.empty()) continue;
    ++frontier;
    double best = kInf;
    for (int q = 0; q < in.p; ++q) {
      if (st.in_use[static_cast<std::size_t>(q)] ||
          !in.usable[static_cast<std::size_t>(q)])
        continue;
      double c = 0.0;
      for (const auto& [row, bytes] : placed) c += bytes * dist_cost(row[q]);
      if (c < best) best = c;
      if (c < col_min[static_cast<std::size_t>(q)])
        col_min[static_cast<std::size_t>(q)] = c;
    }
    row_sum += best;
  }
  if (frontier > 0) {
    std::vector<double> cols;
    for (int q = 0; q < in.p; ++q)
      if (!st.in_use[static_cast<std::size_t>(q)] &&
          in.usable[static_cast<std::size_t>(q)])
        cols.push_back(col_min[static_cast<std::size_t>(q)]);
    std::sort(cols.begin(), cols.end());
    double col_sum = 0.0;
    for (int k = 0; k < frontier && k < static_cast<int>(cols.size()); ++k)
      col_sum += cols[static_cast<std::size_t>(k)];
    bound += std::max(row_sum, col_sum);
  }
  return bound;
}

/// Depth-first branch and bound below an already-committed prefix of
/// depths [0, d).  Deterministic: children sorted by (incremental cost,
/// processor id), incumbent updated on strict improvement only.
void dfs(const Instance& in, Search& st, int d, double partial) {
  if (d == in.n) {
    if (partial < st.best) {
      st.best = partial;
      st.best_assigned = st.assigned;
    }
    return;
  }
  std::vector<std::pair<double, int>> candidates;
  candidates.reserve(static_cast<std::size_t>(in.p));
  for (int q = 0; q < in.p; ++q) {
    if (st.in_use[static_cast<std::size_t>(q)] ||
        !in.usable[static_cast<std::size_t>(q)])
      continue;
    candidates.emplace_back(incremental_cost(in, st, d, q), q);
  }
  std::sort(candidates.begin(), candidates.end());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& [inc, q] = candidates[i];
    if (++st.nodes > in.per_root_budget) {
      st.budget_exceeded = true;
      return;
    }
    const double next = partial + inc;
    if (!(next < st.best)) {
      // Sorted children: every later candidate is at least as costly.
      st.pruned += static_cast<long long>(candidates.size() - i);
      return;
    }
    st.assigned[static_cast<std::size_t>(d)] = q;
    st.in_use[static_cast<std::size_t>(q)] = 1;
    const double bound = next + frontier_bound(in, st, d + 1);
    if (bound < st.best)
      dfs(in, st, d + 1, next);
    else
      ++st.pruned;
    st.in_use[static_cast<std::size_t>(q)] = 0;
    st.assigned[static_cast<std::size_t>(d)] = -1;
    if (st.budget_exceeded) return;
  }
}

/// Deterministic greedy upper bound: tasks in search order, each on the
/// free usable processor with the cheapest exact placed-edge cost (ties to
/// the lower id).  Seeds every root's incumbent so pruning bites from the
/// first node.
std::pair<double, std::vector<int>> greedy_upper_bound(const Instance& in) {
  Search st(in);
  double total = 0.0;
  for (int d = 0; d < in.n; ++d) {
    double best = kInf;
    int best_q = -1;
    for (int q = 0; q < in.p; ++q) {
      if (st.in_use[static_cast<std::size_t>(q)] ||
          !in.usable[static_cast<std::size_t>(q)])
        continue;
      if (best_q < 0) best_q = q;  // fallback when every option is +inf
      const double c = incremental_cost(in, st, d, q);
      if (c < best) {
        best = c;
        best_q = q;
      }
    }
    TOPOMAP_ASSERT(best_q >= 0, "greedy ran out of usable processors");
    st.assigned[static_cast<std::size_t>(d)] = best_q;
    st.in_use[static_cast<std::size_t>(best_q)] = 1;
    total += best == kInf ? kInf : best;
  }
  return {total, st.assigned};
}

/// Root placements for the first task: automorphism representatives on
/// recognized pristine machines, every usable processor otherwise.
std::vector<int> symmetry_roots(const topo::Topology& topo, bool symmetry,
                                const std::vector<char>& usable) {
  std::vector<int> all;
  for (int q = 0; q < static_cast<int>(usable.size()); ++q)
    if (usable[static_cast<std::size_t>(q)]) all.push_back(q);
  if (!symmetry) return all;
  const topo::Topology* t = &topo;
  if (const auto* ov = dynamic_cast<const topo::FaultOverlay*>(t)) {
    // Any real fault breaks the base machine's symmetry.
    if (ov->num_failed_nodes() > 0 || ov->num_failed_links() > 0 ||
        ov->num_degraded_links() > 0)
      return all;
    t = &ov->base();
  }
  if (dynamic_cast<const topo::Hypercube*>(t) != nullptr)
    return {0};  // XOR-translation makes every vertex equivalent
  if (const auto* tm = dynamic_cast<const topo::TorusMesh*>(t)) {
    // Wrapped dimensions translate any coordinate to 0; open dimensions
    // reflect the upper half onto the lower.
    std::vector<std::vector<int>> allowed;
    for (int dim = 0; dim < tm->dimensions(); ++dim) {
      std::vector<int> coords_of_dim;
      if (tm->wraps(dim)) {
        coords_of_dim.push_back(0);
      } else {
        const int extent = tm->dims()[static_cast<std::size_t>(dim)];
        for (int c = 0; c <= (extent - 1) / 2; ++c) coords_of_dim.push_back(c);
      }
      allowed.push_back(std::move(coords_of_dim));
    }
    std::vector<int> roots;
    std::vector<std::size_t> pick(allowed.size(), 0);
    for (;;) {
      std::vector<int> coords(allowed.size());
      for (std::size_t i = 0; i < allowed.size(); ++i)
        coords[i] = allowed[i][pick[i]];
      roots.push_back(tm->index(coords));
      std::size_t i = 0;
      while (i < allowed.size() && ++pick[i] == allowed[i].size())
        pick[i++] = 0;
      if (i == allowed.size()) break;
    }
    std::sort(roots.begin(), roots.end());
    return roots;
  }
  return all;
}

}  // namespace

OptimalResult find_optimal_mapping(const graph::TaskGraph& g,
                                   const topo::Topology& topo,
                                   const OptimalOptions& options) {
  OptimalResult result;
  const int n = g.num_vertices();
  if (n == 0) return result;
  TOPOMAP_REQUIRE(n <= options.max_tasks,
                  "exact search is factorial: " + std::to_string(n) +
                      " tasks exceed the max_tasks cap of " +
                      std::to_string(options.max_tasks));
  OBS_SPAN("optimal/map");

  Instance in;
  const topo::DistanceCache plane(topo);
  in.g = &g;
  in.plane = &plane;
  in.n = n;
  in.p = topo.size();

  in.usable.assign(static_cast<std::size_t>(in.p), 1);
  int usable_count = in.p;
  if (const auto* ov = dynamic_cast<const topo::FaultOverlay*>(&topo)) {
    usable_count = ov->num_alive();
    for (int q = 0; q < in.p; ++q)
      in.usable[static_cast<std::size_t>(q)] = ov->is_alive(q) ? 1 : 0;
  }
  TOPOMAP_REQUIRE(n <= usable_count,
                  "workload has " + std::to_string(n) + " tasks but only " +
                      std::to_string(usable_count) +
                      " usable processors");
  in.usable_count = usable_count;

  // Search order: descending total communication, ties to the lower id.
  in.order.resize(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) in.order[static_cast<std::size_t>(t)] = t;
  std::sort(in.order.begin(), in.order.end(), [&g](int a, int b) {
    if (g.comm_bytes(a) != g.comm_bytes(b))
      return g.comm_bytes(a) > g.comm_bytes(b);
    return a < b;
  });
  std::vector<int> depth_of(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d)
    depth_of[static_cast<std::size_t>(in.order[static_cast<std::size_t>(d)])] =
        d;

  in.back_edges.resize(static_cast<std::size_t>(n));
  // Per edge: the lower of its two depths, with its bytes — the edge joins
  // the "both endpoints unplaced" suffix for every frontier depth <= lo.
  std::vector<std::pair<int, double>> edge_lo;
  for (const graph::UndirectedEdge& e : g.edges()) {
    const int da = depth_of[static_cast<std::size_t>(e.a)];
    const int db = depth_of[static_cast<std::size_t>(e.b)];
    const int lo = std::min(da, db);
    const int hi = std::max(da, db);
    in.back_edges[static_cast<std::size_t>(hi)].emplace_back(lo, e.bytes);
    edge_lo.emplace_back(lo, e.bytes);
  }
  for (auto& edges : in.back_edges) std::sort(edges.begin(), edges.end());

  // Ascending finite pairwise distances between distinct usable processors
  // (each unordered pair once) — the price list of the sorted bound.
  std::vector<double> pair_dist;
  for (int a = 0; a < in.p; ++a) {
    if (!in.usable[static_cast<std::size_t>(a)]) continue;
    const std::uint16_t* row = plane.row(a);
    for (int b = a + 1; b < in.p; ++b) {
      if (!in.usable[static_cast<std::size_t>(b)]) continue;
      const double dcost = dist_cost(row[b]);
      if (dcost < kInf) pair_dist.push_back(dcost);
    }
  }
  std::sort(pair_dist.begin(), pair_dist.end());
  in.suffix_pair_bound.assign(static_cast<std::size_t>(n) + 1, 0.0);
  in.suffix_bytes_desc.resize(static_cast<std::size_t>(n) + 1);
  for (int d = 0; d <= n; ++d) {
    std::vector<double>& bytes_desc =
        in.suffix_bytes_desc[static_cast<std::size_t>(d)];
    for (const auto& [lo, bytes] : edge_lo)
      if (lo >= d) bytes_desc.push_back(bytes);
    std::sort(bytes_desc.begin(), bytes_desc.end(), std::greater<>());
    if (bytes_desc.size() > pair_dist.size()) {
      // More suffix edges than finite pairs: no completion is feasible.
      in.suffix_pair_bound[static_cast<std::size_t>(d)] = kInf;
      continue;
    }
    double bound = 0.0;
    for (std::size_t i = 0; i < bytes_desc.size(); ++i)
      bound += bytes_desc[i] * pair_dist[i];
    in.suffix_pair_bound[static_cast<std::size_t>(d)] = bound;
  }

  const auto [greedy_cost, greedy_assigned] = greedy_upper_bound(in);
  const std::vector<int> roots =
      symmetry_roots(topo, options.symmetry, in.usable);
  TOPOMAP_ASSERT(!roots.empty(), "no root candidates");
  in.per_root_budget = std::max<long long>(
      1, options.node_budget / static_cast<long long>(roots.size()));

  // Independent deterministic searches per root, merged in ascending root
  // order with strict improvement — byte-identical at any thread count.
  struct RootOutcome {
    double best = kInf;
    std::vector<int> assigned;
    long long nodes = 0;
    long long pruned = 0;
    bool budget_exceeded = false;
  };
  std::vector<RootOutcome> outcomes(roots.size());
  support::parallel_for(static_cast<int>(roots.size()), 1,
                        [&](int begin, int end) {
    for (int r = begin; r < end; ++r) {
      const int root = roots[static_cast<std::size_t>(r)];
      Search st(in);
      st.best = greedy_cost;
      st.nodes = 1;  // the root assignment itself
      st.assigned[0] = root;
      st.in_use[static_cast<std::size_t>(root)] = 1;
      const double bound = frontier_bound(in, st, 1);
      if (bound < st.best)
        dfs(in, st, 1, 0.0);
      else
        ++st.pruned;
      RootOutcome& out = outcomes[static_cast<std::size_t>(r)];
      out.best = st.best;
      out.assigned = std::move(st.best_assigned);
      out.nodes = st.nodes;
      out.pruned = st.pruned;
      out.budget_exceeded = st.budget_exceeded;
    }
  });

  double best = greedy_cost;
  std::vector<int> best_assigned = greedy_assigned;
  for (std::size_t r = 0; r < outcomes.size(); ++r) {
    const RootOutcome& out = outcomes[r];
    result.nodes += out.nodes;
    result.pruned += out.pruned;
    if (out.budget_exceeded)
      throw precondition_error(
          "optimal search exhausted its node budget (" +
          std::to_string(in.per_root_budget) + " nodes for root " +
          std::to_string(roots[r]) + " of " + std::to_string(roots.size()) +
          "); raise OptimalOptions::node_budget or shrink the instance");
    if (out.best < best) {
      best = out.best;
      best_assigned = out.assigned;
    }
  }
  TOPOMAP_REQUIRE(best < kInf,
                  "no feasible placement: the machine's usable processors "
                  "cannot host the communication graph (partitioned?)");

  result.mapping.assign(static_cast<std::size_t>(n), kUnassigned);
  for (int d = 0; d < n; ++d)
    result.mapping[static_cast<std::size_t>(
        in.order[static_cast<std::size_t>(d)])] =
        best_assigned[static_cast<std::size_t>(d)];
  // Canonical value: recomputed over the edge list in its stored order, so
  // it compares exactly against core::hop_bytes / brute-force enumeration.
  result.hop_bytes = hop_bytes(g, plane, result.mapping);
  result.root_candidates = static_cast<int>(roots.size());
  OBS_COUNTER_ADD("optimal/nodes", result.nodes);
  OBS_COUNTER_ADD("optimal/pruned", result.pruned);
  OBS_COUNTER_ADD("optimal/maps", 1);
  return result;
}

Mapping OptimalLB::map(const graph::TaskGraph& g, const topo::Topology& topo,
                       Rng& rng) const {
  (void)rng;  // exact: tie-breaks are structural, never random
  TOPOMAP_REQUIRE(g.num_vertices() <= topo.size(),
                  "more tasks than processors");
  return find_optimal_mapping(g, topo, options_).mapping;
}

}  // namespace topomap::core
