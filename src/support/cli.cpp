#include "support/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "support/error.hpp"

namespace topomap {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {
  add_flag("help", "print this help text");
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  TOPOMAP_REQUIRE(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{help, "false", /*is_flag=*/true, false};
}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  TOPOMAP_REQUIRE(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{help, default_value, /*is_flag=*/false, false};
}

bool CliParser::parse(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "topomap-bin";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::cerr << "unexpected positional argument: " << arg << "\n"
                << usage();
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(arg);
    if (it == options_.end()) {
      std::cerr << "unknown option: --" << arg << "\n" << usage();
      return false;
    }
    Option& opt = it->second;
    if (opt.is_flag) {
      if (has_value) {
        std::cerr << "flag --" << arg << " does not take a value\n";
        return false;
      }
      opt.value = "true";
    } else {
      if (!has_value) {
        if (i + 1 >= argc) {
          std::cerr << "option --" << arg << " needs a value\n";
          return false;
        }
        value = argv[++i];
      }
      opt.value = value;
    }
    opt.seen = true;
  }
  if (flag("help")) {
    std::cout << usage();
    return false;
  }
  return true;
}

const CliParser::Option& CliParser::lookup(const std::string& name) const {
  auto it = options_.find(name);
  TOPOMAP_REQUIRE(it != options_.end(), "option was never registered: " + name);
  return it->second;
}

bool CliParser::flag(const std::string& name) const {
  return lookup(name).value == "true";
}

std::string CliParser::str(const std::string& name) const {
  return lookup(name).value;
}

std::int64_t CliParser::integer(const std::string& name) const {
  const std::string& v = lookup(name).value;
  std::size_t pos = 0;
  const std::int64_t out = std::stoll(v, &pos);
  TOPOMAP_REQUIRE(pos == v.size(), "option --" + name + " is not an integer");
  return out;
}

double CliParser::real(const std::string& name) const {
  const std::string& v = lookup(name).value;
  std::size_t pos = 0;
  const double out = std::stod(v, &pos);
  TOPOMAP_REQUIRE(pos == v.size(), "option --" + name + " is not a number");
  return out;
}

std::vector<std::int64_t> CliParser::int_list(const std::string& name) const {
  std::vector<std::int64_t> out;
  std::stringstream ss(lookup(name).value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stoll(item));
  }
  return out;
}

std::vector<double> CliParser::real_list(const std::string& name) const {
  std::vector<double> out;
  std::stringstream ss(lookup(name).value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stod(item));
  }
  return out;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nusage: " << program_ << " [options]\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    if (!opt.is_flag) os << "=<" << opt.value << ">";
    os << "\n      " << opt.help << "\n";
  }
  return os.str();
}

}  // namespace topomap
