// Deterministic pseudo-random number generation.
//
// All randomness in topomap flows through Rng so that every experiment is
// reproducible from a single printed 64-bit seed.  The generator is
// xoshiro256** (Blackman & Vigna) seeded via splitmix64, which is both fast
// and statistically strong enough for workload generation and random
// placement baselines.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "support/error.hpp"

namespace topomap {

/// splitmix64 step — used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with a std::uniform_random_bit_generator interface.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234567890ABCDEFULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    seed_ = seed;
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// The seed this generator was (re)constructed from.
  std::uint64_t seed() const { return seed_; }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t uniform(std::uint64_t bound) {
    TOPOMAP_REQUIRE(bound > 0, "uniform() bound must be positive");
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    TOPOMAP_REQUIRE(lo <= hi, "uniform_int() empty range");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform(span));
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    return lo + (hi - lo) * uniform_double();
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform_double() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A uniformly random permutation of [0, n).
  std::vector<int> permutation(int n) {
    TOPOMAP_REQUIRE(n >= 0, "permutation() negative size");
    std::vector<int> p(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
    shuffle(p);
    return p;
  }

  /// Derive an independent child generator (for parallel-safe substreams).
  Rng split() {
    std::uint64_t child_seed = (*this)() ^ 0x9E3779B97f4A7C15ULL;
    return Rng(child_seed);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;
};

}  // namespace topomap
