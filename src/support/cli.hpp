// Minimal command-line option parsing for bench/example binaries.
//
// Supports `--key=value`, `--key value`, and boolean `--flag` forms.
// Unknown options are an error so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace topomap {

class CliParser {
 public:
  CliParser(std::string program_description);

  /// Register options before calling parse(). `help` appears in usage().
  void add_flag(const std::string& name, const std::string& help);
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parses argv. Returns false (after printing usage) on `--help` or on a
  /// malformed/unknown option.
  bool parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  std::string str(const std::string& name) const;
  std::int64_t integer(const std::string& name) const;
  double real(const std::string& name) const;

  /// Comma-separated integer list, e.g. `--sizes=64,256,1024`.
  std::vector<std::int64_t> int_list(const std::string& name) const;
  std::vector<double> real_list(const std::string& name) const;

  std::string usage() const;

 private:
  struct Option {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool seen = false;
  };

  const Option& lookup(const std::string& name) const;

  std::string description_;
  std::string program_;
  std::map<std::string, Option> options_;
};

}  // namespace topomap
