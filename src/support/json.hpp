// Minimal JSON value model, writer, and parser shared by the whole stack.
//
// Two subsystems speak JSON: obs:: emits machine-readable artifacts
// (obs::Report documents and Chrome-trace span dumps) and consumes them
// again (tools/obs_diff, trace-validation tests), and svc:: frames every
// topomapd request/response as a JSON document.  All of it goes through
// this one value model so writers and parsers can never drift apart.
// Historically this lived at obs/json.hpp; that header remains as an alias
// (`obs::json` = `support::json`) so existing call sites compile unchanged.
//
// Scope is deliberately small: UTF-8 in/out, objects preserve insertion
// order (reports diff cleanly), numbers are doubles printed with round-trip
// precision (integral values print without a fraction).  Malformed input
// throws topomap::precondition_error with a byte offset.  This is not a
// general-purpose JSON library; it exists so obs has zero external
// dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace topomap::support::json {

class Value;

/// Object members as an insertion-ordered vector: report sections keep the
/// order they were written in, and repeated set() overwrites in place.
using Members = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kNumber), num_(d) {}
  Value(int i) : kind_(Kind::kNumber), num_(i) {}
  Value(std::int64_t i)
      : kind_(Kind::kNumber), num_(static_cast<double>(i)) {}
  Value(std::uint64_t u)
      : kind_(Kind::kNumber), num_(static_cast<double>(u)) {}
  Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Value(const char* s) : kind_(Kind::kString), str_(s) {}

  static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw precondition_error on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& items() const;
  const Members& members() const;

  /// Array append (requires kArray).
  void push_back(Value v);
  std::size_t size() const;

  /// Object member access (requires kObject).  set() overwrites an existing
  /// key in place; find() returns nullptr when absent; at() throws.
  void set(std::string key, Value v);
  const Value* find(std::string_view key) const;
  const Value& at(std::string_view key) const;

  /// Serialize.  indent < 0: compact one-line form; indent >= 0: pretty,
  /// `indent` spaces per level.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document (trailing garbage is an error).
  /// Throws precondition_error with a byte offset on malformed input.
  static Value parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  Members obj_;
};

/// Round-trip formatting for a JSON number: integral values within the
/// exactly-representable range print as integers, everything else with
/// enough digits to survive parse(dump(x)) bit-exactly.
std::string format_number(double d);

}  // namespace topomap::support::json
