#include "support/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/error.hpp"
#include "support/stats.hpp"

namespace topomap {

Table::Table(std::string title, std::vector<std::string> columns,
             int precision)
    : title_(std::move(title)),
      columns_(std::move(columns)),
      precision_(precision) {
  TOPOMAP_REQUIRE(!columns_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<TableCell> cells) {
  TOPOMAP_REQUIRE(cells.size() == columns_.size(),
                  "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(const TableCell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell))
    return std::to_string(*i);
  // One rounding policy for every numeric artifact (obs summaries, bench
  // tables): support::format_fixed.
  return format_fixed(std::get<double>(cell), precision_);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    widths[c] = columns_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << '\n';
  };
  print_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rendered) print_row(row);
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string e = "\"";
    for (char ch : s) {
      if (ch == '"') e += '"';
      e += ch;
    }
    e += '"';
    return e;
  };
  for (std::size_t c = 0; c < columns_.size(); ++c)
    out << (c ? "," : "") << escape(columns_[c]);
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "," : "");
      if (const auto* s = std::get_if<std::string>(&row[c]))
        out << escape(*s);
      else
        out << format_cell(row[c]);
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace topomap
