#include "support/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace topomap::support {

namespace {

/// True while the current thread is executing a pool chunk; nested
/// parallel_for calls from worker threads run inline instead of deadlocking
/// on the pool.
thread_local bool t_in_worker = false;

/// One parallel_for invocation.  Owned by shared_ptr so a worker that wakes
/// late can still drain a job the caller has already abandoned.
struct Job {
  std::function<void(int)> run_chunk;  // chunk index -> work
  int total = 0;
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex mutex;
  std::condition_variable finished;

  void work() {
    for (;;) {
      const int c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= total) return;
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          run_chunk(c);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        std::lock_guard<std::mutex> lock(mutex);  // pair with caller's wait
        finished.notify_all();
      }
    }
  }
};

class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  int num_threads() const { return num_threads_; }

  void set_num_threads(int n) {
    TOPOMAP_REQUIRE(n >= 1, "thread count must be >= 1");
    stop_workers();
    num_threads_ = n;
    start_workers();
  }

  void run(int num_chunks, const std::function<void(int)>& chunk_body) {
    if (num_chunks <= 0) return;
    if (num_threads_ == 1 || num_chunks == 1 || t_in_worker) {
      for (int c = 0; c < num_chunks; ++c) chunk_body(c);
      return;
    }
    auto job = std::make_shared<Job>();
    job->run_chunk = chunk_body;
    job->total = num_chunks;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      current_ = job;
      ++job_id_;
    }
    wake_.notify_all();
    t_in_worker = true;  // chunks run on this thread too; nested calls inline
    job->work();
    t_in_worker = false;
    std::unique_lock<std::mutex> lock(job->mutex);
    job->finished.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) >= job->total;
    });
    if (job->error) std::rethrow_exception(job->error);
  }

 private:
  ThreadPool() {
    int n = static_cast<int>(std::thread::hardware_concurrency());
    if (const char* env = std::getenv("TOPOMAP_THREADS")) {
      const int parsed = std::atoi(env);
      if (parsed >= 1) n = parsed;
    }
    num_threads_ = n >= 1 ? n : 1;
    start_workers();
  }

  ~ThreadPool() { stop_workers(); }

  void start_workers() {
    shutdown_ = false;
    for (int i = 1; i < num_threads_; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
  }

  void worker_loop() {
    t_in_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return shutdown_ || job_id_ != seen; });
        if (shutdown_) return;
        seen = job_id_;
        job = current_;
      }
      if (job) job->work();
    }
  }

  int num_threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::shared_ptr<Job> current_;
  std::uint64_t job_id_ = 0;
  bool shutdown_ = false;
};

}  // namespace

InlineScope::InlineScope() : prev_(t_in_worker) { t_in_worker = true; }

InlineScope::~InlineScope() { t_in_worker = prev_; }

int num_threads() { return ThreadPool::instance().num_threads(); }

void set_num_threads(int n) { ThreadPool::instance().set_num_threads(n); }

int parallel_chunk_count(int n, int grain) {
  if (n <= 0) return 0;
  if (grain < 1) grain = 1;
  return (n + grain - 1) / grain;
}

namespace detail {

bool use_inline() {
  return t_in_worker || ThreadPool::instance().num_threads() == 1;
}

void run_pooled(int n, int grain,
                const std::function<void(int, int, int)>& body) {
  const int chunks = parallel_chunk_count(n, grain);
  ThreadPool::instance().run(chunks, [&](int c) {
    const int begin = c * grain;
    const int end = begin + grain < n ? begin + grain : n;
    body(c, begin, end);
  });
}

}  // namespace detail

}  // namespace topomap::support
