// Deterministic shared-memory parallelism for the mapping hot loops.
//
// A single process-wide worker pool executes `parallel_for` loops with
// *static chunking*: the iteration space [0, n) is split into fixed chunks
// of `grain` indices, so chunk boundaries depend only on (n, grain) — never
// on the number of worker threads.  Workers pull chunk indices from an
// atomic counter, but every chunk writes only to its own slice (or its own
// per-chunk accumulator slot, reduced by the caller in ascending chunk
// order), so results are byte-identical for any thread count, including 1.
// This is the determinism contract every parallel kernel in src/core relies
// on; see DESIGN.md §"Distance-plane engine".
//
// The pool size comes from TOPOMAP_THREADS (env) or hardware concurrency,
// and can be changed at runtime with set_num_threads().  With one thread —
// or when called from inside a worker — loops run inline with zero
// synchronization overhead.
#pragma once

#include <functional>

namespace topomap::support {

/// Current worker count (>= 1).  First call initializes the pool from the
/// TOPOMAP_THREADS environment variable, defaulting to hardware concurrency.
int num_threads();

/// Resize the pool.  n >= 1; n == 1 disables all threading.  Not
/// thread-safe against concurrent parallel_for calls — call from the main
/// thread between parallel regions (tests and benches do).
void set_num_threads(int n);

/// Number of chunks `parallel_for` will create for an n-sized loop with the
/// given grain (both clamped to >= 1).  Callers allocating per-chunk
/// accumulator slots size them with this.
int parallel_chunk_count(int n, int grain);

/// Marks the current thread as an execution context whose parallel_for
/// calls run inline, exactly as if the pool had one thread.  The process
/// pool has a single in-flight job slot, so two threads submitting pooled
/// loops concurrently is not supported — request-level concurrency (the
/// topomapd worker threads, each running an independent mapping kernel)
/// instead pins each request to its own thread with an InlineScope.  The
/// determinism contract makes this free of result skew: inline execution
/// is byte-identical to any pool width.  Scopes nest; the destructor
/// restores the previous state.
class InlineScope {
 public:
  InlineScope();
  ~InlineScope();
  InlineScope(const InlineScope&) = delete;
  InlineScope& operator=(const InlineScope&) = delete;

 private:
  bool prev_;
};

namespace detail {

/// True when loops must run inline on the calling thread: a single-worker
/// pool, or a nested call from inside a pool chunk.  The hot mapping loops
/// issue tens of thousands of tiny parallel_for calls, so the inline path
/// must not pay a std::function allocation — the templates below check
/// this first and only type-erase on the pooled path.
bool use_inline();

/// Pooled execution of body(chunk, begin, end); n > 0, grain >= 1.
void run_pooled(int n, int grain,
                const std::function<void(int, int, int)>& body);

}  // namespace detail

/// Run body(chunk, begin, end) for every chunk of [0, n), where
/// [begin, end) is chunk `chunk`'s index range.  Chunks may run
/// concurrently and in any order; the caller's thread participates.  The
/// first exception thrown by any chunk is rethrown on the calling thread
/// after the loop drains.  Reentrant calls from inside a chunk run inline.
template <class Body>
void parallel_for_chunks(int n, int grain, Body&& body) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (detail::use_inline()) {
    const int chunks = (n + grain - 1) / grain;
    for (int c = 0; c < chunks; ++c) {
      const int begin = c * grain;
      const int end = begin + grain < n ? begin + grain : n;
      body(c, begin, end);
    }
    return;
  }
  detail::run_pooled(n, grain, std::function<void(int, int, int)>(
                                   [&body](int c, int begin, int end) {
                                     body(c, begin, end);
                                   }));
}

/// parallel_for_chunks without the chunk index: body(begin, end).
template <class Body>
void parallel_for(int n, int grain, Body&& body) {
  parallel_for_chunks(
      n, grain, [&body](int, int begin, int end) { body(begin, end); });
}

}  // namespace topomap::support
