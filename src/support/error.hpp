// Error-handling helpers shared by all topomap libraries.
//
// Library code never calls abort()/assert(); precondition violations throw
// std::invalid_argument and internal invariant violations throw
// std::logic_error, so callers (tests, long-running harnesses) can recover.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace topomap {

/// Thrown when a caller violates a documented precondition.
class precondition_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (a topomap bug, not a user bug).
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an I/O operation on a user-named resource fails (file could
/// not be opened/read/written).  Neither a usage error nor a topomap bug —
/// the environment said no — so the CLI maps it to its own exit code.
class io_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": precondition failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw precondition_error(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": invariant failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw invariant_error(os.str());
}

[[noreturn]] inline void throw_unreachable(const char* file, int line,
                                           const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": reached unreachable code";
  if (!msg.empty()) os << " — " << msg;
  throw invariant_error(os.str());
}
}  // namespace detail

}  // namespace topomap

/// Validate a caller-supplied argument; throws topomap::precondition_error.
#define TOPOMAP_REQUIRE(expr, msg)                                          \
  do {                                                                      \
    if (!(expr))                                                            \
      ::topomap::detail::throw_precondition(#expr, __FILE__, __LINE__,      \
                                            (msg));                        \
  } while (false)

/// Check an internal invariant; throws topomap::invariant_error.
#define TOPOMAP_ASSERT(expr, msg)                                           \
  do {                                                                      \
    if (!(expr))                                                            \
      ::topomap::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Mark a structurally unreachable point (e.g. after an exhaustive switch or
/// a loop guaranteed to return).  Unlike `TOPOMAP_ASSERT(false, ...)`, the
/// [[noreturn]] callee lets every compiler prove the enclosing function
/// cannot fall off its end, keeping -Wreturn-type clean at all optimization
/// levels.  Throws topomap::invariant_error if ever executed.
#define TOPOMAP_UNREACHABLE(msg) \
  ::topomap::detail::throw_unreachable(__FILE__, __LINE__, (msg))
