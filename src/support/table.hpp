// Aligned-table and CSV emission for bench harnesses.
//
// Every experiment binary prints a human-readable aligned table to stdout
// (the "same rows the paper reports") and can mirror the rows to a CSV file
// for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace topomap {

/// A cell is a string, integer, or double (formatted with fixed precision).
using TableCell = std::variant<std::string, std::int64_t, double>;

class Table {
 public:
  /// @param title      printed above the table
  /// @param columns    header names
  /// @param precision  digits after the decimal point for double cells
  Table(std::string title, std::vector<std::string> columns, int precision = 3);

  void add_row(std::vector<TableCell> cells);

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<TableCell>>& rows() const { return rows_; }

  /// Render an aligned table (with title and header rule) to `os`.
  void print(std::ostream& os) const;

  /// Write the rows as CSV (header + data) to `path`. Returns false on I/O
  /// failure — benches treat that as a warning, not a fatal error.
  bool write_csv(const std::string& path) const;

 private:
  std::string format_cell(const TableCell& cell) const;

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<TableCell>> rows_;
  int precision_;
};

}  // namespace topomap
