#include "support/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace topomap::support::json {

namespace {

constexpr int kMaxDepth = 64;  // parser recursion bound

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw precondition_error("json: " + what + " at byte " +
                             std::to_string(pos));
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // Encode the code point as UTF-8.  Surrogate pairs are passed
          // through as two 3-byte sequences — obs never emits them, and
          // faithfully re-encoding lone surrogates keeps the parser total.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    auto digits = [&] {
      bool any = false;
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
        ++pos;
        any = true;
      }
      return any;
    };
    if (!digits()) fail("malformed number");
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (!digits()) fail("malformed number fraction");
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (!digits()) fail("malformed number exponent");
    }
    // The slice is a valid JSON number grammar-wise; strtod accepts a
    // superset, so this cannot fail to consume the whole slice.
    const std::string slice(text.substr(start, pos - start));
    return std::strtod(slice.c_str(), nullptr);
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos;
      Value v = Value::object();
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return v;
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.set(std::move(key), parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos;
      Value v = Value::array();
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return v;
      }
      for (;;) {
        v.push_back(parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') return Value(parse_string());
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (consume_literal("null")) return Value();
    if (c == '-' || (c >= '0' && c <= '9')) return Value(parse_number());
    fail("unexpected character");
  }
};

}  // namespace

std::string format_number(double d) {
  TOPOMAP_REQUIRE(std::isfinite(d), "json numbers must be finite");
  // Integral values inside the exact double range print without a fraction
  // so counters stay readable and diffs stay clean.
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    return buf;
  }
  // Shortest round-trip: try increasing precision until parse-back is exact.
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  return buf;
}

bool Value::as_bool() const {
  TOPOMAP_REQUIRE(kind_ == Kind::kBool, "json value is not a bool");
  return bool_;
}

double Value::as_number() const {
  TOPOMAP_REQUIRE(kind_ == Kind::kNumber, "json value is not a number");
  return num_;
}

const std::string& Value::as_string() const {
  TOPOMAP_REQUIRE(kind_ == Kind::kString, "json value is not a string");
  return str_;
}

const std::vector<Value>& Value::items() const {
  TOPOMAP_REQUIRE(kind_ == Kind::kArray, "json value is not an array");
  return arr_;
}

const Members& Value::members() const {
  TOPOMAP_REQUIRE(kind_ == Kind::kObject, "json value is not an object");
  return obj_;
}

void Value::push_back(Value v) {
  TOPOMAP_REQUIRE(kind_ == Kind::kArray, "push_back on a non-array");
  arr_.push_back(std::move(v));
}

std::size_t Value::size() const {
  if (kind_ == Kind::kArray) return arr_.size();
  if (kind_ == Kind::kObject) return obj_.size();
  TOPOMAP_REQUIRE(false, "size() on a non-container json value");
  return 0;
}

void Value::set(std::string key, Value v) {
  TOPOMAP_REQUIRE(kind_ == Kind::kObject, "set on a non-object");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
}

const Value* Value::find(std::string_view key) const {
  TOPOMAP_REQUIRE(kind_ == Kind::kObject, "find on a non-object");
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  TOPOMAP_REQUIRE(v != nullptr, "missing json key: " + std::string(key));
  return *v;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += format_number(num_); break;
    case Kind::kString: append_escaped(out, str_); break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += pretty ? "," : ",";
        newline_pad(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline_pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ",";
        newline_pad(depth + 1);
        append_escaped(out, obj_[i].first);
        out += pretty ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Value Value::parse(std::string_view text) {
  Parser p{text};
  Value v = p.parse_value(0);
  p.skip_ws();
  TOPOMAP_REQUIRE(p.pos == text.size(),
                  "json: trailing garbage at byte " + std::to_string(p.pos));
  return v;
}

}  // namespace topomap::support::json
