// Streaming statistics accumulators used by the simulator, the benches,
// and the obs:: observability registry.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace topomap {

/// The one count/sum/min/max accumulator.  This used to exist as drifting
/// ad-hoc copies (bench mean loops, RunningStats internals); now
/// obs::Registry value distributions, RunningStats, and the bench helpers
/// all aggregate through this struct, so every layer applies the same
/// empty-set conventions (mean/min/max of nothing are 0).
///
/// count is exact; min/max/count merges are order-free.  sum is a plain
/// left-to-right double accumulation: exact for integral-valued samples
/// (below 2^53), deterministic up to FP associativity otherwise — which is
/// why obs counters that must merge bit-identically across thread shards
/// are kept integral.
struct Distribution {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void add(double x) {
    ++count;
    sum += x;
    min = std::min(min, x);
    max = std::max(max, x);
  }

  void merge(const Distribution& other) {
    if (other.count == 0) return;
    count += other.count;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }

  double mean() const {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
  double min_or_zero() const { return count ? min : 0.0; }
  double max_or_zero() const { return count ? max : 0.0; }
};

/// The one fixed-point rendering policy for human-readable output: Table
/// cells, the obs tracer's text summary, and any bench that formats its own
/// doubles go through here, so "3 digits" means the same rounding
/// everywhere.
inline std::string format_fixed(double x, int precision) {
  TOPOMAP_REQUIRE(precision >= 0 && precision <= 17,
                  "format_fixed precision out of range");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, x);
  return buf;
}

/// Welford-style streaming accumulator: mean/variance/min/max without
/// retaining samples.  Numerically stable for long simulator runs.  The
/// count/sum/min/max plane is the shared Distribution; Welford's mean/m2
/// recurrence is layered on top for the variance.
class RunningStats {
 public:
  void add(double x) {
    base_.add(x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(base_.count);
    m2_ += delta * (x - mean_);
  }

  void merge(const RunningStats& other) {
    if (other.base_.count == 0) return;
    if (base_.count == 0) {
      *this = other;
      return;
    }
    const auto na = static_cast<double>(base_.count);
    const auto nb = static_cast<double>(other.base_.count);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    base_.merge(other.base_);
  }

  std::uint64_t count() const { return base_.count; }
  double sum() const { return base_.sum; }
  double mean() const { return base_.count ? mean_ : 0.0; }
  double variance() const {
    return base_.count > 1 ? m2_ / static_cast<double>(base_.count - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return base_.min_or_zero(); }
  double max() const { return base_.max_or_zero(); }

 private:
  Distribution base_;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Retains samples; supports exact percentiles.  Use for modest sample
/// counts (e.g. per-message latencies in a bench run).
class SampleStats {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  /// Exact q-quantile via linear interpolation, q in [0,1].
  double percentile(double q) {
    TOPOMAP_REQUIRE(q >= 0.0 && q <= 1.0, "percentile out of range");
    TOPOMAP_REQUIRE(!samples_.empty(), "percentile of empty sample set");
    ensure_sorted();
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double min() {
    ensure_sorted();
    TOPOMAP_REQUIRE(!samples_.empty(), "min of empty sample set");
    return samples_.front();
  }

  double max() {
    ensure_sorted();
    TOPOMAP_REQUIRE(!samples_.empty(), "max of empty sample set");
    return samples_.back();
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = true;
};

}  // namespace topomap
