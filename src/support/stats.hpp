// Streaming statistics accumulators used by the simulator and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace topomap {

/// Welford-style streaming accumulator: mean/variance/min/max without
/// retaining samples.  Numerically stable for long simulator runs.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Retains samples; supports exact percentiles.  Use for modest sample
/// counts (e.g. per-message latencies in a bench run).
class SampleStats {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  /// Exact q-quantile via linear interpolation, q in [0,1].
  double percentile(double q) {
    TOPOMAP_REQUIRE(q >= 0.0 && q <= 1.0, "percentile out of range");
    TOPOMAP_REQUIRE(!samples_.empty(), "percentile of empty sample set");
    ensure_sorted();
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double min() {
    ensure_sorted();
    TOPOMAP_REQUIRE(!samples_.empty(), "min of empty sample set");
    return samples_.front();
  }

  double max() {
    ensure_sorted();
    TOPOMAP_REQUIRE(!samples_.empty(), "max of empty sample set");
    return samples_.back();
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = true;
};

}  // namespace topomap
