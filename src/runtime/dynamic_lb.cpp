#include "runtime/dynamic_lb.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/metrics.hpp"
#include "core/refine_topo_lb.hpp"
#include "core/validate.hpp"
#include "graph/quotient.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "topo/components.hpp"
#include "topo/distance_cache.hpp"
#include "topo/fault_overlay.hpp"
#include "topo/sub_topology.hpp"

namespace topomap::rts {

namespace {

/// Multiplicatively perturb loads and edge bytes.
graph::TaskGraph drift(const graph::TaskGraph& g, double load_drift,
                       double comm_drift, Rng& rng) {
  graph::TaskGraph::Builder b(g.label());
  for (int v = 0; v < g.num_vertices(); ++v)
    b.add_vertex(g.vertex_weight(v) *
                 rng.uniform_double(1.0 - load_drift, 1.0 + load_drift));
  for (const graph::UndirectedEdge& e : g.edges())
    b.add_edge(e.a, e.b,
               e.bytes *
                   rng.uniform_double(1.0 - comm_drift, 1.0 + comm_drift));
  return std::move(b).build();
}

int count_migrations(const std::vector<int>& before,
                     const std::vector<int>& after) {
  TOPOMAP_ASSERT(before.size() == after.size(), "placement size changed");
  int moved = 0;
  for (std::size_t i = 0; i < before.size(); ++i)
    if (before[i] != after[i]) ++moved;
  return moved;
}

bool is_link_event(EventKind k) {
  return k == EventKind::kLinkFail || k == EventKind::kLinkRestore ||
         k == EventKind::kLinkDegrade || k == EventKind::kLinkRestoreHealth;
}

void check_event(const Event& ev, int epochs, const topo::Topology& topo) {
  TOPOMAP_REQUIRE(ev.epoch >= 0 && ev.epoch < epochs,
                  "event epoch out of range");
  TOPOMAP_REQUIRE(ev.a >= 0 && ev.a < topo.size(),
                  "event processor out of range");
  if (is_link_event(ev.kind)) {
    TOPOMAP_REQUIRE(ev.b >= 0 && ev.b < topo.size(),
                    "event processor out of range");
    TOPOMAP_REQUIRE(ev.a != ev.b, "link event needs two distinct endpoints");
    TOPOMAP_REQUIRE(topo.has_adjacency(),
                    "link events need a routed topology (" + topo.name() +
                        " has no processor-level links)");
  }
  if (ev.kind == EventKind::kLinkDegrade)
    TOPOMAP_REQUIRE(ev.health > 0.0 && ev.health <= 1.0,
                    "degrade health must be in (0, 1]");
}

}  // namespace

EventOutcome apply_event(topo::FaultOverlay& overlay,
                         topo::DistanceCache* plane, const Event& ev) {
  EventOutcome out;
  const int a = ev.a;
  const int b = ev.b;
  switch (ev.kind) {
    case EventKind::kNodeFail: {
      if (overlay.node_failed(a)) return out;  // idempotent
      overlay.fail_node(a);
      if (plane != nullptr)
        out.rows_repaired = plane->repair_node_failure(overlay, a);
      break;
    }
    case EventKind::kNodeRestore: {
      if (!overlay.node_failed(a)) return out;  // idempotent
      overlay.restore_node(a);
      if (plane != nullptr)
        out.rows_repaired = plane->repair_node_restore(overlay, a);
      break;
    }
    case EventKind::kLinkFail: {
      if (overlay.link_failed(a, b)) return out;  // idempotent
      const int prev = overlay.fail_link(a, b);
      // A dead endpoint makes the link inert already: no distance changes.
      if (plane != nullptr && overlay.is_alive(a) && overlay.is_alive(b))
        out.rows_repaired = plane->repair_link_failure(overlay, a, b, prev);
      break;
    }
    case EventKind::kLinkRestore: {
      if (!overlay.link_failed(a, b)) return out;  // idempotent
      const int cost = overlay.restore_link(a, b);
      if (plane != nullptr && overlay.is_alive(a) && overlay.is_alive(b))
        out.rows_repaired = plane->repair_link_restore(overlay, a, b, cost);
      break;
    }
    case EventKind::kLinkDegrade:
    case EventKind::kLinkRestoreHealth: {
      const double health =
          ev.kind == EventKind::kLinkRestoreHealth ? 1.0 : ev.health;
      if (!ev.strict && (overlay.link_failed(a, b) || !overlay.is_alive(a) ||
                         !overlay.is_alive(b)))
        return out;  // the repair crew found the link hard-dead: skip
      if (overlay.link_health(a, b) == health) return out;  // idempotent
      const int prev = overlay.degrade_link(a, b, health);
      if (plane != nullptr)
        out.rows_repaired = plane->repair_link_degrade(overlay, a, b, prev);
      break;
    }
  }
  out.applied = true;
  return out;
}

DynamicLBRun run_dynamic_lb_detailed(const graph::TaskGraph& initial,
                                     const topo::Topology& topo,
                                     const DynamicLBConfig& config, Rng& rng) {
  TOPOMAP_REQUIRE(config.epochs >= 1, "need at least one epoch");
  TOPOMAP_REQUIRE(config.load_drift >= 0.0 && config.load_drift < 1.0,
                  "load_drift must be in [0,1)");
  TOPOMAP_REQUIRE(config.comm_drift >= 0.0 && config.comm_drift < 1.0,
                  "comm_drift must be in [0,1)");
  TOPOMAP_REQUIRE(config.pipeline.mapper != nullptr, "pipeline needs a mapper");
  for (const FaultEvent& f : config.faults) {
    TOPOMAP_REQUIRE(f.epoch >= 0 && f.epoch < config.epochs,
                    "fault epoch out of range");
    TOPOMAP_REQUIRE(f.proc >= 0 && f.proc < topo.size(),
                    "fault processor out of range");
    TOPOMAP_REQUIRE(config.pipeline.partitioner != nullptr,
                    "faults shrink the machine below the object count: the "
                    "pipeline needs a partitioner");
  }

  // Merged timeline: the legacy node-death list first, then the generalized
  // events, scanned in this order at every epoch boundary.
  std::vector<Event> timeline;
  timeline.reserve(config.faults.size() + config.events.size());
  for (const FaultEvent& f : config.faults)
    timeline.push_back({f.epoch, EventKind::kNodeFail, f.proc, 0, 1.0, false});
  for (const Event& ev : config.events) {
    check_event(ev, config.epochs, topo);
    timeline.push_back(ev);
  }
  bool can_shrink = false;
  for (const Event& ev : timeline)
    if (ev.kind == EventKind::kNodeFail || ev.kind == EventKind::kLinkFail)
      can_shrink = true;
  TOPOMAP_REQUIRE(!can_shrink || config.pipeline.partitioner != nullptr,
                  "fault events can shrink or split the machine: the "
                  "pipeline needs a partitioner");

  // Fault-free runs take exactly the legacy code path: no overlay queries,
  // no plane, no component scans, no validation.
  const bool resilient = !timeline.empty();

  DynamicLBRun run;
  graph::TaskGraph current = initial;
  std::vector<int> prev_placement;

  // Incremental state: grouping and group mapping carried across epochs.
  // square_* covers the whole machine, compact_* the active-on-primary
  // remap; each invalidates the other when its path runs.
  std::vector<int> groups;
  core::Mapping group_mapping;
  bool square_valid = false;
  bool compact_valid = false;

  // Fault state.  The overlay decorates the caller's topology (non-owning
  // view; both live for this call only); alive_view is the compact primary
  // subset every post-fault mapping runs on, rebuilt after each event.
  const auto overlay = std::make_shared<topo::FaultOverlay>(
      topo::TopologyPtr(topo::TopologyPtr{}, &topo));
  std::shared_ptr<const topo::SubTopology> alive_view;
  // Compact group mapping (group -> alive_view processor), the post-fault
  // counterpart of group_mapping.
  core::Mapping compact_mapping;

  // The runtime-owned distance plane, repaired incrementally per event and
  // cross-checked by validate_state (skipped above the dense-matrix cap).
  std::unique_ptr<topo::DistanceCache> plane;
  if (resilient && topo.size() <= 20000)
    plane = std::make_unique<topo::DistanceCache>(*overlay);

  topo::ComponentSplit split;
  if (resilient) split = topo::connected_components(*overlay);

  const int n = initial.num_vertices();
  std::vector<char> qflags(static_cast<std::size_t>(n), 0);
  std::vector<int> active_ids;  // ascending; filled only while quarantining
  int quarantined_count = 0;

  core::ValidateOptions vopts;
  vopts.plane_rows = config.resilience.plane_rows;
  vopts.check_attribution = config.resilience.check_attribution;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    OBS_SPAN("dynamic_lb/epoch");
    OBS_COUNTER_ADD("dynamic_lb/epochs", 1);
    if (epoch > 0)
      current = drift(current, config.load_drift, config.comm_drift, rng);

    DynamicEpochStats stats;
    stats.epoch = epoch;

    // --- apply this epoch's events, repairing the plane as we go ---
    bool state_changed = false;
    for (const Event& ev : timeline) {
      if (ev.epoch != epoch) continue;
      const bool skip_repair =
          plane != nullptr &&
          std::find(config.resilience.skip_repairs.begin(),
                    config.resilience.skip_repairs.end(),
                    run.events_applied) != config.resilience.skip_repairs.end();
      const EventOutcome out =
          apply_event(*overlay, skip_repair ? nullptr : plane.get(), ev);
      if (out.applied) {
        state_changed = true;
        ++run.events_applied;
        ++stats.events_applied;
        stats.plane_rows_repaired += out.rows_repaired;
        if (skip_repair) OBS_COUNTER_ADD("dynamic_lb/repairs_skipped", 1);
      } else {
        ++run.events_skipped;
        ++stats.events_skipped;
        OBS_COUNTER_ADD("dynamic_lb/events_skipped", 1);
      }
    }
    const int alive = overlay->num_alive();
    TOPOMAP_REQUIRE(alive >= 1, "every processor has failed");
    stats.alive_procs = alive;

    // --- self-validation of the repaired plane (repair-or-rebuild) ---
    if (plane != nullptr && config.resilience.validate && state_changed) {
      core::SystemState pstate;
      pstate.graph = &current;
      pstate.overlay = overlay.get();
      pstate.plane = plane.get();
      core::ValidationReport rep = core::validate_state(pstate, vopts);
      if (!rep.ok()) {
        run.violations += static_cast<int>(rep.violations.size());
        OBS_COUNTER_ADD("dynamic_lb/plane_rebuilds", 1);
        plane->rebuild(*overlay);
        ++run.plane_rebuilds;
        stats.plane_rebuilt = true;
        rep = core::validate_state(pstate, vopts);
        TOPOMAP_ASSERT(rep.ok(),
                       "distance plane still invalid after a full rebuild: " +
                           rep.summary());
      }
    }

    // --- partition bookkeeping: quarantine across minority components ---
    if (resilient && state_changed) {
      split = topo::connected_components(*overlay);
      qflags.assign(static_cast<std::size_t>(n), 0);
      active_ids.clear();
      quarantined_count = 0;
      if (split.partitioned() && !prev_placement.empty()) {
        std::vector<char> in_primary(static_cast<std::size_t>(topo.size()), 0);
        for (int p : split.primary())
          in_primary[static_cast<std::size_t>(p)] = 1;
        for (int t = 0; t < n; ++t) {
          const int p = prev_placement[static_cast<std::size_t>(t)];
          // Frozen in place: resident on an alive minority processor.
          // Stranded tasks (dead processor) stay active and get remapped.
          if (p != core::kUnassigned && overlay->is_alive(p) &&
              in_primary[static_cast<std::size_t>(p)] == 0) {
            qflags[static_cast<std::size_t>(t)] = 1;
            ++quarantined_count;
          }
        }
      }
      if (quarantined_count > 0)
        for (int t = 0; t < n; ++t)
          if (qflags[static_cast<std::size_t>(t)] == 0) active_ids.push_back(t);
    }
    stats.components = resilient ? split.count() : 1;
    stats.quarantined = quarantined_count;
    if (stats.components > 1) ++run.partitioned_epochs;
    run.max_quarantined = std::max(run.max_quarantined, quarantined_count);
    TOPOMAP_REQUIRE(
        quarantined_count < n,
        "network partition stranded every object on minority components");

    // --- placement ---
    std::vector<int> placement;
    // Grouping context handed to validate_state for this epoch.
    const std::vector<int>* v_active = nullptr;
    core::Mapping v_group_to_proc;

    const bool compact =
        overlay->num_failed_nodes() > 0 || (resilient && split.partitioned());

    // Shrunken or split machine: group the active objects into
    // primary-many parts and map onto the compact primary subset.  Scratch
    // (and any epoch whose machine changed) rebuilds grouping and mapping;
    // later incremental epochs keep both and refine the compact mapping.
    auto place_compact = [&](bool force_regroup) {
      const std::vector<int>& primary = split.primary();
      const int slots = static_cast<int>(primary.size());
      if (state_changed || alive_view == nullptr)
        alive_view = std::make_shared<const topo::SubTopology>(
            topo::TopologyPtr(topo::TopologyPtr{}, overlay.get()), primary);

      graph::Subgraph sub;
      const bool use_sub = quarantined_count > 0;
      if (use_sub) sub = graph::induced_subgraph(current, active_ids);
      const graph::TaskGraph& active = use_sub ? sub.graph : current;
      const int active_n = active.num_vertices();
      const int k = std::min(active_n, slots);

      if (config.policy == RemapPolicy::kScratch || state_changed ||
          !compact_valid || force_regroup) {
        groups = config.pipeline.partitioner->partition(active, k, rng)
                     .assignment;
        const graph::TaskGraph quotient =
            graph::quotient_graph(active, groups, slots);
        compact_mapping = config.pipeline.mapper->map(quotient, *alive_view,
                                                      rng);
        if (config.pipeline.refine_passes > 0) {
          compact_mapping =
              core::refine_mapping(quotient, *alive_view, compact_mapping,
                                   config.pipeline.refine_passes)
                  .mapping;
        }
        stats.hops_per_byte =
            core::hops_per_byte(quotient, *alive_view, compact_mapping) /
            static_cast<double>(alive_view->distance_scale());
      } else {
        const graph::TaskGraph quotient =
            graph::quotient_graph(active, groups, slots);
        compact_mapping = core::refine_mapping(quotient, *alive_view,
                                               compact_mapping,
                                               config.refine_passes)
                              .mapping;
        stats.hops_per_byte =
            core::hops_per_byte(quotient, *alive_view, compact_mapping) /
            static_cast<double>(alive_view->distance_scale());
      }
      compact_valid = true;
      square_valid = false;
      stats.load_imbalance = part::load_imbalance(active, groups, slots);

      if (use_sub) {
        placement = prev_placement;  // quarantined objects stay frozen
        for (std::size_t i = 0; i < active_ids.size(); ++i)
          placement[static_cast<std::size_t>(active_ids[i])] =
              alive_view->node_of(
                  compact_mapping[static_cast<std::size_t>(groups[i])]);
        v_active = &active_ids;
      } else {
        placement.resize(static_cast<std::size_t>(current.num_vertices()));
        for (int obj = 0; obj < current.num_vertices(); ++obj)
          placement[static_cast<std::size_t>(obj)] =
              alive_view->node_of(compact_mapping[static_cast<std::size_t>(
                  groups[static_cast<std::size_t>(obj)])]);
        v_active = nullptr;
      }
      v_group_to_proc.resize(static_cast<std::size_t>(slots));
      for (int gidx = 0; gidx < slots; ++gidx)
        v_group_to_proc[static_cast<std::size_t>(gidx)] = alive_view->node_of(
            compact_mapping[static_cast<std::size_t>(gidx)]);
    };

    // Whole machine alive and connected: the two-phase pipeline on the
    // (possibly link-faulted) overlay, or on the pristine base.
    auto place_square = [&](bool force_scratch) {
      const topo::Topology& machine =
          overlay->has_faults() ? static_cast<const topo::Topology&>(*overlay)
                                : topo;
      if (config.policy == RemapPolicy::kScratch || epoch == 0 ||
          !square_valid || force_scratch) {
        const PipelineResult out =
            run_two_phase(current, machine, config.pipeline, rng);
        placement = out.object_to_proc;
        stats.hops_per_byte =
            out.hops_per_byte / static_cast<double>(machine.distance_scale());
        stats.load_imbalance = out.load_imbalance;
        groups = out.group_of_object;
        group_mapping = out.group_mapping;
      } else {
        // Incremental: fixed grouping, refine last epoch's group mapping on
        // the drifted quotient graph.
        const graph::TaskGraph quotient =
            current.num_vertices() == topo.size()
                ? current
                : graph::quotient_graph(current, groups, topo.size());
        group_mapping = core::refine_mapping(quotient, machine, group_mapping,
                                             config.refine_passes)
                            .mapping;
        placement.resize(static_cast<std::size_t>(current.num_vertices()));
        for (int obj = 0; obj < current.num_vertices(); ++obj)
          placement[static_cast<std::size_t>(obj)] =
              group_mapping[static_cast<std::size_t>(
                  groups[static_cast<std::size_t>(obj)])];
        stats.hops_per_byte =
            core::hops_per_byte(quotient, machine, group_mapping) /
            static_cast<double>(machine.distance_scale());
        stats.load_imbalance =
            part::load_imbalance(current, groups, topo.size());
      }
      square_valid = true;
      compact_valid = false;
      v_active = nullptr;
      v_group_to_proc = group_mapping;
    };

    if (compact)
      place_compact(false);
    else
      place_square(false);

    // --- self-validation of the full system state ---
    if (resilient && config.resilience.validate) {
      core::SystemState st;
      st.graph = &current;
      st.overlay = overlay.get();
      st.placement = &placement;
      st.quarantined = &qflags;
      st.groups = &groups;
      st.active_tasks = v_active;
      st.group_mapping = &v_group_to_proc;
      // The plane was already cross-checked right after the events.
      core::ValidationReport rep = core::validate_state(st, vopts);
      if (!rep.ok()) {
        run.violations += static_cast<int>(rep.violations.size());
        OBS_COUNTER_ADD("dynamic_lb/placement_rebuilds", 1);
        if (plane != nullptr) {
          plane->rebuild(*overlay);
          ++run.plane_rebuilds;
          stats.plane_rebuilt = true;
        }
        if (compact)
          place_compact(true);
        else
          place_square(true);
        rep = core::validate_state(st, vopts);
        TOPOMAP_ASSERT(rep.ok(),
                       "system state still invalid after a from-scratch "
                       "remap: " +
                           rep.summary());
      }
    }

    stats.migrations =
        prev_placement.empty() ? 0
                               : count_migrations(prev_placement, placement);
    OBS_COUNTER_ADD("dynamic_lb/migrations", stats.migrations);
    OBS_VALUE("dynamic_lb/epoch_migrations", stats.migrations);
    OBS_SERIES_APPEND("dynamic_lb/hops_per_byte", stats.hops_per_byte);
    prev_placement = std::move(placement);
    run.history.push_back(stats);
  }
  run.final_placement = std::move(prev_placement);
  run.final_quarantined = std::move(qflags);
  return run;
}

std::vector<DynamicEpochStats> run_dynamic_lb(const graph::TaskGraph& initial,
                                              const topo::Topology& topo,
                                              const DynamicLBConfig& config,
                                              Rng& rng) {
  return run_dynamic_lb_detailed(initial, topo, config, rng).history;
}

}  // namespace topomap::rts
