#include "runtime/dynamic_lb.hpp"

#include <memory>

#include "core/metrics.hpp"
#include "core/refine_topo_lb.hpp"
#include "graph/quotient.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "topo/fault_overlay.hpp"
#include "topo/sub_topology.hpp"

namespace topomap::rts {

namespace {

/// Multiplicatively perturb loads and edge bytes.
graph::TaskGraph drift(const graph::TaskGraph& g, double load_drift,
                       double comm_drift, Rng& rng) {
  graph::TaskGraph::Builder b(g.label());
  for (int v = 0; v < g.num_vertices(); ++v)
    b.add_vertex(g.vertex_weight(v) *
                 rng.uniform_double(1.0 - load_drift, 1.0 + load_drift));
  for (const graph::UndirectedEdge& e : g.edges())
    b.add_edge(e.a, e.b,
               e.bytes *
                   rng.uniform_double(1.0 - comm_drift, 1.0 + comm_drift));
  return std::move(b).build();
}

int count_migrations(const std::vector<int>& before,
                     const std::vector<int>& after) {
  TOPOMAP_ASSERT(before.size() == after.size(), "placement size changed");
  int moved = 0;
  for (std::size_t i = 0; i < before.size(); ++i)
    if (before[i] != after[i]) ++moved;
  return moved;
}

}  // namespace

std::vector<DynamicEpochStats> run_dynamic_lb(const graph::TaskGraph& initial,
                                              const topo::Topology& topo,
                                              const DynamicLBConfig& config,
                                              Rng& rng) {
  TOPOMAP_REQUIRE(config.epochs >= 1, "need at least one epoch");
  TOPOMAP_REQUIRE(config.load_drift >= 0.0 && config.load_drift < 1.0,
                  "load_drift must be in [0,1)");
  TOPOMAP_REQUIRE(config.comm_drift >= 0.0 && config.comm_drift < 1.0,
                  "comm_drift must be in [0,1)");
  TOPOMAP_REQUIRE(config.pipeline.mapper != nullptr, "pipeline needs a mapper");
  for (const FaultEvent& f : config.faults) {
    TOPOMAP_REQUIRE(f.epoch >= 0 && f.epoch < config.epochs,
                    "fault epoch out of range");
    TOPOMAP_REQUIRE(f.proc >= 0 && f.proc < topo.size(),
                    "fault processor out of range");
    TOPOMAP_REQUIRE(config.pipeline.partitioner != nullptr,
                    "faults shrink the machine below the object count: the "
                    "pipeline needs a partitioner");
  }

  std::vector<DynamicEpochStats> history;
  graph::TaskGraph current = initial;
  std::vector<int> prev_placement;

  // Incremental state: grouping and group mapping carried across epochs.
  std::vector<int> groups;
  core::Mapping group_mapping;

  // Fault state.  The overlay decorates the caller's topology (non-owning
  // view; both live for this call only); alive_view is the compact alive
  // subset every post-fault mapping runs on, rebuilt after each failure.
  const auto overlay = std::make_shared<topo::FaultOverlay>(
      topo::TopologyPtr(topo::TopologyPtr{}, &topo));
  std::shared_ptr<const topo::SubTopology> alive_view;
  // Compact group mapping (group -> alive_view processor), the post-fault
  // counterpart of group_mapping.
  core::Mapping compact_mapping;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    OBS_SPAN("dynamic_lb/epoch");
    OBS_COUNTER_ADD("dynamic_lb/epochs", 1);
    if (epoch > 0)
      current = drift(current, config.load_drift, config.comm_drift, rng);

    bool new_fault = false;
    for (const FaultEvent& f : config.faults) {
      if (f.epoch != epoch || overlay->node_failed(f.proc)) continue;
      overlay->fail_node(f.proc);
      new_fault = true;
    }
    const int alive = overlay->num_alive();
    TOPOMAP_REQUIRE(alive >= 1, "every processor has failed");
    if (new_fault) {
      // Throws precondition_error if the failures disconnected the alive
      // set — fail fast rather than mapping onto a split machine.
      alive_view = std::make_shared<const topo::SubTopology>(
          topo::TopologyPtr(topo::TopologyPtr{}, overlay.get()),
          overlay->alive_procs());
    }

    DynamicEpochStats stats;
    stats.epoch = epoch;
    stats.alive_procs = alive;
    std::vector<int> placement;

    if (overlay->num_failed_nodes() > 0) {
      // Shrunken machine: group into alive-many parts and map onto the
      // compact alive subset.  Scratch (and any epoch with a fresh fault)
      // rebuilds grouping and mapping; later incremental epochs keep both
      // and refine the compact mapping.
      if (config.policy == RemapPolicy::kScratch || new_fault) {
        groups = config.pipeline.partitioner->partition(current, alive, rng)
                     .assignment;
        const graph::TaskGraph quotient =
            graph::quotient_graph(current, groups, alive);
        compact_mapping = config.pipeline.mapper->map(quotient, *alive_view,
                                                      rng);
        if (config.pipeline.refine_passes > 0) {
          compact_mapping =
              core::refine_mapping(quotient, *alive_view, compact_mapping,
                                   config.pipeline.refine_passes)
                  .mapping;
        }
        stats.hops_per_byte =
            core::hops_per_byte(quotient, *alive_view, compact_mapping);
      } else {
        const graph::TaskGraph quotient =
            graph::quotient_graph(current, groups, alive);
        compact_mapping = core::refine_mapping(quotient, *alive_view,
                                               compact_mapping,
                                               config.refine_passes)
                              .mapping;
        stats.hops_per_byte =
            core::hops_per_byte(quotient, *alive_view, compact_mapping);
      }
      stats.load_imbalance = part::load_imbalance(current, groups, alive);
      placement.resize(static_cast<std::size_t>(current.num_vertices()));
      for (int obj = 0; obj < current.num_vertices(); ++obj)
        placement[static_cast<std::size_t>(obj)] =
            alive_view->node_of(compact_mapping[static_cast<std::size_t>(
                groups[static_cast<std::size_t>(obj)])]);
    } else if (config.policy == RemapPolicy::kScratch || epoch == 0) {
      const PipelineResult out =
          run_two_phase(current, topo, config.pipeline, rng);
      placement = out.object_to_proc;
      stats.hops_per_byte = out.hops_per_byte;
      stats.load_imbalance = out.load_imbalance;
      groups = out.group_of_object;
      group_mapping = out.group_mapping;
    } else {
      // Incremental: fixed grouping, refine last epoch's group mapping on
      // the drifted quotient graph.
      const graph::TaskGraph quotient =
          current.num_vertices() == topo.size()
              ? current
              : graph::quotient_graph(current, groups, topo.size());
      group_mapping = core::refine_mapping(quotient, topo, group_mapping,
                                           config.refine_passes)
                          .mapping;
      placement.resize(static_cast<std::size_t>(current.num_vertices()));
      for (int obj = 0; obj < current.num_vertices(); ++obj)
        placement[static_cast<std::size_t>(obj)] =
            group_mapping[static_cast<std::size_t>(
                groups[static_cast<std::size_t>(obj)])];
      stats.hops_per_byte = core::hops_per_byte(quotient, topo, group_mapping);
      stats.load_imbalance =
          part::load_imbalance(current, groups, topo.size());
    }

    stats.migrations =
        prev_placement.empty() ? 0
                               : count_migrations(prev_placement, placement);
    OBS_COUNTER_ADD("dynamic_lb/migrations", stats.migrations);
    OBS_VALUE("dynamic_lb/epoch_migrations", stats.migrations);
    OBS_SERIES_APPEND("dynamic_lb/hops_per_byte", stats.hops_per_byte);
    prev_placement = std::move(placement);
    history.push_back(stats);
  }
  return history;
}

}  // namespace topomap::rts
