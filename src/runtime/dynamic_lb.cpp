#include "runtime/dynamic_lb.hpp"

#include "core/metrics.hpp"
#include "core/refine_topo_lb.hpp"
#include "graph/quotient.hpp"
#include "support/error.hpp"

namespace topomap::rts {

namespace {

/// Multiplicatively perturb loads and edge bytes.
graph::TaskGraph drift(const graph::TaskGraph& g, double load_drift,
                       double comm_drift, Rng& rng) {
  graph::TaskGraph::Builder b(g.label());
  for (int v = 0; v < g.num_vertices(); ++v)
    b.add_vertex(g.vertex_weight(v) *
                 rng.uniform_double(1.0 - load_drift, 1.0 + load_drift));
  for (const graph::UndirectedEdge& e : g.edges())
    b.add_edge(e.a, e.b,
               e.bytes *
                   rng.uniform_double(1.0 - comm_drift, 1.0 + comm_drift));
  return std::move(b).build();
}

int count_migrations(const std::vector<int>& before,
                     const std::vector<int>& after) {
  TOPOMAP_ASSERT(before.size() == after.size(), "placement size changed");
  int moved = 0;
  for (std::size_t i = 0; i < before.size(); ++i)
    if (before[i] != after[i]) ++moved;
  return moved;
}

}  // namespace

std::vector<DynamicEpochStats> run_dynamic_lb(const graph::TaskGraph& initial,
                                              const topo::Topology& topo,
                                              const DynamicLBConfig& config,
                                              Rng& rng) {
  TOPOMAP_REQUIRE(config.epochs >= 1, "need at least one epoch");
  TOPOMAP_REQUIRE(config.load_drift >= 0.0 && config.load_drift < 1.0,
                  "load_drift must be in [0,1)");
  TOPOMAP_REQUIRE(config.comm_drift >= 0.0 && config.comm_drift < 1.0,
                  "comm_drift must be in [0,1)");
  TOPOMAP_REQUIRE(config.pipeline.mapper != nullptr, "pipeline needs a mapper");

  std::vector<DynamicEpochStats> history;
  graph::TaskGraph current = initial;
  std::vector<int> prev_placement;

  // Incremental state: grouping and group mapping carried across epochs.
  std::vector<int> groups;
  core::Mapping group_mapping;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    if (epoch > 0)
      current = drift(current, config.load_drift, config.comm_drift, rng);

    DynamicEpochStats stats;
    stats.epoch = epoch;
    std::vector<int> placement;

    if (config.policy == RemapPolicy::kScratch || epoch == 0) {
      const PipelineResult out =
          run_two_phase(current, topo, config.pipeline, rng);
      placement = out.object_to_proc;
      stats.hops_per_byte = out.hops_per_byte;
      stats.load_imbalance = out.load_imbalance;
      groups = out.group_of_object;
      group_mapping = out.group_mapping;
    } else {
      // Incremental: fixed grouping, refine last epoch's group mapping on
      // the drifted quotient graph.
      const graph::TaskGraph quotient =
          current.num_vertices() == topo.size()
              ? current
              : graph::quotient_graph(current, groups, topo.size());
      group_mapping = core::refine_mapping(quotient, topo, group_mapping,
                                           config.refine_passes)
                          .mapping;
      placement.resize(static_cast<std::size_t>(current.num_vertices()));
      for (int obj = 0; obj < current.num_vertices(); ++obj)
        placement[static_cast<std::size_t>(obj)] =
            group_mapping[static_cast<std::size_t>(
                groups[static_cast<std::size_t>(obj)])];
      stats.hops_per_byte = core::hops_per_byte(quotient, topo, group_mapping);
      stats.load_imbalance =
          part::load_imbalance(current, groups, topo.size());
    }

    stats.migrations =
        prev_placement.empty() ? 0
                               : count_migrations(prev_placement, placement);
    prev_placement = std::move(placement);
    history.push_back(stats);
  }
  return history;
}

}  // namespace topomap::rts
