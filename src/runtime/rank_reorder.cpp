#include "runtime/rank_reorder.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace topomap::rts {

graph::TaskGraph read_comm_matrix(std::istream& is) {
  std::string keyword;
  int n = 0;
  is >> keyword >> n;
  TOPOMAP_REQUIRE(is && keyword == "ranks" && n >= 1,
                  "comm matrix must start with 'ranks N'");
  std::vector<double> matrix(static_cast<std::size_t>(n) *
                             static_cast<std::size_t>(n));
  for (auto& cell : matrix) {
    is >> cell;
    TOPOMAP_REQUIRE(static_cast<bool>(is), "comm matrix truncated");
    TOPOMAP_REQUIRE(cell >= 0.0, "comm matrix entries must be >= 0");
  }
  graph::TaskGraph::Builder b("ranks(" + std::to_string(n) + ")");
  b.add_vertices(n, 1.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double bytes =
          matrix[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)] +
          matrix[static_cast<std::size_t>(j) * n + static_cast<std::size_t>(i)];
      if (bytes > 0.0) b.add_edge(i, j, bytes);
    }
  }
  return std::move(b).build();
}

graph::TaskGraph read_comm_matrix_file(const std::string& path) {
  std::ifstream in(path);
  TOPOMAP_REQUIRE(static_cast<bool>(in), "cannot open comm matrix: " + path);
  return read_comm_matrix(in);
}

void write_comm_matrix(std::ostream& os, const graph::TaskGraph& g) {
  const int n = g.num_vertices();
  os << "ranks " << n << '\n';
  os << std::setprecision(17);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      // Split each undirected edge's bytes evenly across both directions.
      const double bytes = (i == j) ? 0.0 : g.edge_bytes(i, j) / 2.0;
      os << (j ? " " : "") << bytes;
    }
    os << '\n';
  }
}

core::Mapping reorder_ranks(const graph::TaskGraph& ranks,
                            const topo::Topology& topo,
                            const core::MappingStrategy& strategy, Rng& rng) {
  TOPOMAP_REQUIRE(ranks.num_vertices() == topo.size(),
                  "need exactly one rank per processor");
  return strategy.map(ranks, topo, rng);
}

void write_rank_mapping(std::ostream& os, const core::Mapping& m) {
  for (std::size_t rank = 0; rank < m.size(); ++rank)
    os << rank << ' ' << m[rank] << '\n';
}

core::Mapping read_rank_mapping(std::istream& is) {
  core::Mapping m;
  std::size_t rank = 0;
  std::size_t expected = 0;
  int proc = 0;
  while (is >> rank >> proc) {
    TOPOMAP_REQUIRE(rank == expected, "rank mapping out of order");
    m.push_back(proc);
    ++expected;
  }
  TOPOMAP_REQUIRE(!m.empty(), "empty rank mapping");
  return m;
}

}  // namespace topomap::rts
