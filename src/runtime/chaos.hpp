// Seeded chaos engine: deterministic fault/recovery timelines for soak
// testing the dynamic runtime.
//
// Production machines do not fail one node at a time on a schedule; they
// fail in correlated bursts (a power rail takes out a drawer, a switch
// takes out its whole neighborhood), degrade before they die, and come
// back when the repair crew swaps the part.  make_chaos_schedule() turns
// that phenomenology into a reproducible rts::Event timeline:
//
//  * Poisson-ish arrivals: `event_rate` expected new faults per epoch
//    (fractional rates Bernoulli-round per epoch).
//  * Correlated bursts: with probability `burst_prob` an arrival becomes a
//    burst killing a BFS ball of `burst_size` alive processors around a
//    random seed — the generic stand-in for a torus row or dragonfly group
//    sharing a failure domain.  Bursts are how transient partitions
//    actually happen.
//  * Fault mix: `link_fraction` of single arrivals hit links instead of
//    processors; of those, `degrade_fraction` soft-fault to a random
//    health step (0.25/0.5/0.75) instead of hard-failing.
//  * Recovery: every fault schedules its own repair
//    uniform(recovery_min, recovery_max) epochs later (dropped when it
//    would land past the horizon) — so the machine breathes instead of
//    monotonically dying.
//  * Safety valve: node kills stop at `max_dead_fraction` of the machine
//    (the arrival is redirected to a link fault); the last processor is
//    never killed.
//
// The generator replays its own events against a shadow FaultOverlay via
// rts::apply_event — exactly the lenient semantics run_dynamic_lb will use
// — so the emitted timeline is clean: scheduled repairs that no longer
// apply are dropped at generation time where possible, and the few that
// remain inapplicable at run time (strict = false) are skipped, not fatal.
// Same base + same config => byte-identical schedule, any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/dynamic_lb.hpp"
#include "topo/topology.hpp"

namespace topomap::rts {

struct ChaosConfig {
  std::uint64_t seed = 42;
  int epochs = 200;
  double event_rate = 0.3;
  double burst_prob = 0.05;
  int burst_size = 4;
  double link_fraction = 0.5;
  double degrade_fraction = 0.5;
  int recovery_min = 2;
  int recovery_max = 10;
  double max_dead_fraction = 0.4;
};

struct ChaosSchedule {
  std::vector<Event> events;  ///< epoch-ordered, strict = false
  int failures = 0;           ///< node + link hard faults emitted
  int degrades = 0;           ///< soft faults emitted
  int restores = 0;           ///< recovery events emitted
  int bursts = 0;             ///< correlated bursts emitted
};

/// Parse "seed:rate:burst" (e.g. "7:0.5:0.1") into a ChaosConfig: the
/// 64-bit seed, the per-epoch event rate (>= 0), and the burst probability
/// (in [0, 1]).  Everything else keeps its default.  Throws
/// precondition_error on malformed input.
ChaosConfig parse_chaos_spec(const std::string& spec);

/// Generate the deterministic event timeline for `base` (epochs clamped by
/// cfg.epochs; on a distance-model base without processor links the
/// link_fraction is treated as 0 — node events only).
ChaosSchedule make_chaos_schedule(const topo::Topology& base,
                                  const ChaosConfig& cfg);

}  // namespace topomap::rts
