// Failure-driven remap: evacuate stranded tasks off dead processors.
//
// When processors fail mid-run, a full remap gets the best placement but
// migrates almost everything — and in Charm++ terms every migration is
// PUP-serialised object state on the wire.  evacuate() instead keeps every
// surviving placement and moves *only* the stranded tasks (those whose
// processor died), placing each on the free alive processor that minimizes
// its first-order hop-bytes against its already-placed neighbours, plus an
// optional bounded refine pass that may swap an evacuated task with one
// survivor when that strictly improves hop-bytes.  Migration count is
// therefore stranded + (at most one extra per accepted refine swap), versus
// O(n) for the full remap; bench/ablation_fault_tolerance quantifies the
// quality gap, which stays within a few percent of the full remap.
//
// Everything is deterministic: stranded tasks are placed heaviest-
// communicator-first (ties by lower task id), candidate processors tie to
// the lower id, and refine sweeps visit tasks in ascending id order.
//
// Load-aware destinations: with EvacuateOptions::load_weight > 0 the
// destination score adds a contention term
//     load_weight * vertex_weight(t) * neighborhood_load(p)
// where neighborhood_load(p) sums the vertex weights resident on p's alive
// topology neighbours — heavy stranded tasks then steer away from already
// hot regions instead of packing into them.  The term needs processor-level
// links, so on distance-model topologies (has_adjacency() == false) it is
// inert.  load_weight = 0 (the default) skips the bookkeeping entirely and
// reproduces the pure hop-bytes placement bit for bit.
#pragma once

#include <vector>

#include "core/mapping.hpp"
#include "core/strategy.hpp"
#include "graph/task_graph.hpp"
#include "support/rng.hpp"
#include "topo/fault_overlay.hpp"

namespace topomap::rts {

struct EvacuateOptions {
  /// Bounded refine sweeps over the evacuated tasks (0 = placement only).
  int refine_passes = 1;
  /// Weight of the neighbourhood-load contention term in the destination
  /// score.  0 keeps the historical pure hop-bytes behaviour.
  double load_weight = 0.0;
};

struct EvacuationResult {
  /// Repaired placement: task -> alive processor, original overlay ids.
  core::Mapping mapping;
  /// Tasks whose previous processor is dead.
  int stranded = 0;
  /// Tasks whose processor changed (stranded + refine-swap partners).
  int migrations = 0;
  /// Refine swaps accepted (each adds at most one extra migration).
  int refine_swaps = 0;
  /// Hop-bytes of `mapping` on the faulted overlay.
  double hop_bytes = 0.0;
  /// Neighbourhood resident-load imbalance of `mapping` (max / mean over
  /// alive processors); 1.0 on distance models or weightless graphs.
  double load_imbalance = 1.0;
};

/// Repair `previous` (a valid one-to-one placement taken before the
/// failures) against the current fault set of `overlay`.  Requires
/// previous to be injective with every processor in range; throws
/// precondition_error when the stranded tasks cannot fit on the free alive
/// processors or a needed distance is disconnected.  refine_passes = 0
/// migrates exactly the stranded tasks.
EvacuationResult evacuate(const graph::TaskGraph& g,
                          const topo::FaultOverlay& overlay,
                          const core::Mapping& previous,
                          const EvacuateOptions& options);

/// Pure hop-bytes form (options with only refine_passes set).
EvacuationResult evacuate(const graph::TaskGraph& g,
                          const topo::FaultOverlay& overlay,
                          const core::Mapping& previous, int refine_passes = 1);

struct EvacuateComparison {
  EvacuationResult evac;
  /// Full remap of g onto the alive subset (core::map_on_alive).
  core::Mapping full_mapping;
  int full_migrations = 0;
  double full_hop_bytes = 0.0;
};

/// Run evacuate() and a from-scratch alive-subset remap with `strategy`
/// against the same previous placement, for cost/quality comparison.
EvacuateComparison compare_evacuate_vs_remap(const graph::TaskGraph& g,
                                             const topo::FaultOverlay& overlay,
                                             const core::Mapping& previous,
                                             const core::MappingStrategy& strategy,
                                             Rng& rng,
                                             const EvacuateOptions& options);

EvacuateComparison compare_evacuate_vs_remap(const graph::TaskGraph& g,
                                             const topo::FaultOverlay& overlay,
                                             const core::Mapping& previous,
                                             const core::MappingStrategy& strategy,
                                             Rng& rng, int refine_passes = 1);

}  // namespace topomap::rts
