#include "runtime/chaos.hpp"

#include <deque>
#include <map>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "topo/fault_overlay.hpp"

namespace topomap::rts {

namespace {

constexpr double kHealthSteps[] = {0.25, 0.5, 0.75};

bool kill_allowed(const topo::FaultOverlay& shadow, const ChaosConfig& cfg) {
  if (shadow.num_alive() <= 1) return false;
  const double dead_after = shadow.num_failed_nodes() + 1;
  return dead_after <= cfg.max_dead_fraction * shadow.size();
}

int random_alive(const topo::FaultOverlay& shadow, Rng& rng) {
  const std::vector<int> alive = shadow.alive_procs();
  return alive[static_cast<std::size_t>(rng.uniform(alive.size()))];
}

/// Alive BFS ball of up to `want` processors around `seed` (seed included),
/// in deterministic visit order.
std::vector<int> burst_ball(const topo::FaultOverlay& shadow, int seed,
                            int want) {
  std::vector<int> ball;
  if (want <= 0) return ball;
  std::vector<char> seen(static_cast<std::size_t>(shadow.size()), 0);
  std::deque<int> frontier{seed};
  seen[static_cast<std::size_t>(seed)] = 1;
  while (!frontier.empty() && static_cast<int>(ball.size()) < want) {
    const int p = frontier.front();
    frontier.pop_front();
    ball.push_back(p);
    if (!shadow.has_adjacency()) continue;  // distance model: seed only ball
    for (int q : shadow.neighbors(p)) {
      if (seen[static_cast<std::size_t>(q)] != 0) continue;
      seen[static_cast<std::size_t>(q)] = 1;
      frontier.push_back(q);
    }
  }
  return ball;
}

}  // namespace

ChaosConfig parse_chaos_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : spec) {
    if (c == ':') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);
  TOPOMAP_REQUIRE(parts.size() == 3,
                  "chaos spec must be seed:rate:burst, got '" + spec + "'");
  ChaosConfig cfg;
  try {
    std::size_t pos = 0;
    cfg.seed = std::stoull(parts[0], &pos);
    TOPOMAP_REQUIRE(pos == parts[0].size(), "trailing characters");
    cfg.event_rate = std::stod(parts[1], &pos);
    TOPOMAP_REQUIRE(pos == parts[1].size(), "trailing characters");
    cfg.burst_prob = std::stod(parts[2], &pos);
    TOPOMAP_REQUIRE(pos == parts[2].size(), "trailing characters");
  } catch (const precondition_error&) {
    throw precondition_error("bad chaos spec '" + spec +
                             "': want seed:rate:burst, e.g. 7:0.5:0.1");
  } catch (const std::exception&) {
    throw precondition_error("bad chaos spec '" + spec +
                             "': want seed:rate:burst, e.g. 7:0.5:0.1");
  }
  TOPOMAP_REQUIRE(cfg.event_rate >= 0.0,
                  "chaos event rate must be non-negative");
  TOPOMAP_REQUIRE(cfg.burst_prob >= 0.0 && cfg.burst_prob <= 1.0,
                  "chaos burst probability must be in [0, 1]");
  return cfg;
}

ChaosSchedule make_chaos_schedule(const topo::Topology& base,
                                  const ChaosConfig& cfg) {
  TOPOMAP_REQUIRE(cfg.epochs >= 1, "chaos schedule needs at least one epoch");
  TOPOMAP_REQUIRE(cfg.event_rate >= 0.0, "chaos event rate must be non-negative");
  TOPOMAP_REQUIRE(cfg.burst_prob >= 0.0 && cfg.burst_prob <= 1.0,
                  "chaos burst probability must be in [0, 1]");
  TOPOMAP_REQUIRE(cfg.burst_size >= 1, "chaos burst size must be positive");
  TOPOMAP_REQUIRE(
      cfg.link_fraction >= 0.0 && cfg.link_fraction <= 1.0 &&
          cfg.degrade_fraction >= 0.0 && cfg.degrade_fraction <= 1.0,
      "chaos fault-mix fractions must be in [0, 1]");
  TOPOMAP_REQUIRE(cfg.recovery_min >= 1 && cfg.recovery_max >= cfg.recovery_min,
                  "chaos recovery window must satisfy 1 <= min <= max");
  TOPOMAP_REQUIRE(cfg.max_dead_fraction >= 0.0 && cfg.max_dead_fraction < 1.0,
                  "chaos max_dead_fraction must be in [0, 1)");
  TOPOMAP_REQUIRE(base.size() >= 2, "chaos needs at least two processors");

  // The shadow machine replays every emitted event through the same
  // apply_event the runtime uses, so generation-time state == run-time
  // state and the timeline stays self-consistent.
  topo::FaultOverlay shadow(topo::TopologyPtr(topo::TopologyPtr{}, &base));
  const bool links_possible = base.has_adjacency() && cfg.link_fraction > 0.0;
  Rng rng(cfg.seed);
  ChaosSchedule out;
  std::map<int, std::vector<Event>> pending;  // repair crew arrivals

  auto emit = [&](Event ev) -> bool {
    ev.strict = false;
    const bool applied = apply_event(shadow, nullptr, ev).applied;
    out.events.push_back(ev);
    return applied;
  };
  auto schedule_recovery = [&](int epoch, Event repair) {
    const int when = epoch + static_cast<int>(rng.uniform_int(
                                 cfg.recovery_min, cfg.recovery_max));
    if (when < cfg.epochs) pending[when].push_back(repair);
  };
  auto pick_link = [&](int& a, int& b) -> bool {
    for (int tries = 0; tries < 64; ++tries) {
      const int u = random_alive(shadow, rng);
      const std::vector<int> nbrs = shadow.neighbors(u);
      if (nbrs.empty()) continue;
      a = u;
      b = nbrs[static_cast<std::size_t>(rng.uniform(nbrs.size()))];
      return true;
    }
    return false;
  };
  auto link_fault = [&](int epoch) {
    int a = 0;
    int b = 0;
    if (!pick_link(a, b)) return;
    if (rng.bernoulli(cfg.degrade_fraction)) {
      const double health =
          kHealthSteps[static_cast<std::size_t>(rng.uniform(3))];
      if (emit({epoch, EventKind::kLinkDegrade, a, b, health, false})) {
        ++out.degrades;
        schedule_recovery(
            epoch, {0, EventKind::kLinkRestoreHealth, a, b, 1.0, false});
      }
    } else {
      if (emit({epoch, EventKind::kLinkFail, a, b, 1.0, false})) {
        ++out.failures;
        schedule_recovery(epoch,
                          {0, EventKind::kLinkRestore, a, b, 1.0, false});
      }
    }
  };
  auto node_fault = [&](int epoch, int victim) {
    if (!kill_allowed(shadow, cfg)) return false;
    if (emit({epoch, EventKind::kNodeFail, victim, 0, 1.0, false})) {
      ++out.failures;
      schedule_recovery(epoch,
                        {0, EventKind::kNodeRestore, victim, 0, 1.0, false});
      return true;
    }
    return false;
  };

  const int base_arrivals = static_cast<int>(cfg.event_rate);
  const double frac_arrival = cfg.event_rate - base_arrivals;

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    // 1. The repair crew: scheduled recoveries land first, so a machine
    //    under sustained chaos breathes instead of monotonically dying.
    auto due = pending.find(epoch);
    if (due != pending.end()) {
      for (Event ev : due->second) {
        ev.epoch = epoch;
        if (emit(ev)) ++out.restores;
      }
      pending.erase(due);
    }
    // 2. New faults.
    int arrivals = base_arrivals + (rng.bernoulli(frac_arrival) ? 1 : 0);
    while (arrivals-- > 0) {
      if (rng.bernoulli(cfg.burst_prob) && kill_allowed(shadow, cfg)) {
        // Correlated burst: a BFS ball around a random seed goes dark.
        const int seed = random_alive(shadow, rng);
        bool any = false;
        for (int victim : burst_ball(shadow, seed, cfg.burst_size))
          any = node_fault(epoch, victim) || any;
        if (any) ++out.bursts;
      } else if (links_possible && rng.bernoulli(cfg.link_fraction)) {
        link_fault(epoch);
      } else if (kill_allowed(shadow, cfg)) {
        node_fault(epoch, random_alive(shadow, rng));
      } else if (links_possible) {
        // At the dead-fraction cap: redirect the arrival onto the network.
        link_fault(epoch);
      }
    }
  }
  return out;
}

}  // namespace topomap::rts
