// Load-balancing database — the analogue of the Charm++ LB framework's
// measurement store (paper §5.1).
//
// An instrumented run records, per migratable object, its measured compute
// load, and per object pair, the bytes exchanged.  The database can be
// dumped to a file and replayed offline so different strategies are
// compared on *exactly the same* load scenario — the paper's
// +LBDump / +LBSim mechanism.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "graph/task_graph.hpp"

namespace topomap::rts {

class LBDatabase {
 public:
  LBDatabase() = default;
  explicit LBDatabase(int num_objects);

  int num_objects() const { return static_cast<int>(loads_.size()); }

  /// Accumulate measured compute load (abstract work units).
  void add_load(int object, double load);
  double load(int object) const;

  /// Accumulate bytes exchanged between two distinct objects.
  void add_comm(int a, int b, double bytes);
  double comm(int a, int b) const;
  int num_comm_records() const { return static_cast<int>(comm_.size()); }

  /// Merge another measurement window into this one (object counts must
  /// match).
  void merge(const LBDatabase& other);

  /// The paper's process-model view: undirected weighted task graph.
  graph::TaskGraph to_task_graph(const std::string& label = "lbdb") const;

  /// Total bytes recorded (each pair counted once).
  double total_comm_bytes() const;
  double total_load() const;

  // --- dump / replay (versioned text format) ---
  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;
  static LBDatabase load_stream(std::istream& is);
  static LBDatabase load_file(const std::string& path);

  bool operator==(const LBDatabase& other) const = default;

 private:
  void check_object(int id) const;

  std::vector<double> loads_;
  /// Sparse symmetric comm matrix keyed by (min,max) object pair; ordered
  /// so dumps are deterministic.
  std::map<std::pair<int, int>, double> comm_;
};

}  // namespace topomap::rts
