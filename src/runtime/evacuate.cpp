#include "runtime/evacuate.hpp"

#include <algorithm>
#include <string>

#include "core/fault_aware.hpp"
#include "core/metrics.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "topo/components.hpp"

namespace topomap::rts {

namespace {

/// Hop-bytes incident to `task` if it sat on `proc`, against the current
/// placement (unplaced neighbours contribute nothing).
double incident_cost(const graph::TaskGraph& g,
                     const topo::FaultOverlay& overlay, const core::Mapping& m,
                     int task, int proc) {
  double cost = 0.0;
  for (const graph::Edge& e : g.edges_of(task)) {
    const int q = m[static_cast<std::size_t>(e.neighbor)];
    if (q == core::kUnassigned) continue;
    cost += e.bytes * static_cast<double>(overlay.distance(proc, q));
  }
  return cost;
}

int count_migrations(const core::Mapping& before, const core::Mapping& after) {
  int moved = 0;
  for (std::size_t i = 0; i < before.size(); ++i)
    if (before[i] != after[i]) ++moved;
  return moved;
}

/// Resident-load bookkeeping for the load-aware destination score.  Inert
/// (`active == false`, no allocation) when the load term is off or the
/// overlay has no processor-level links.
struct LoadMap {
  bool active = false;
  std::vector<double> load;  // vertex weight resident on each processor

  void init(const graph::TaskGraph& g, const topo::FaultOverlay& overlay,
            const core::Mapping& m, bool on) {
    active = on;
    if (!active) return;
    load.assign(static_cast<std::size_t>(overlay.size()), 0.0);
    for (int t = 0; t < g.num_vertices(); ++t) {
      const int p = m[static_cast<std::size_t>(t)];
      if (p != core::kUnassigned)
        load[static_cast<std::size_t>(p)] += g.vertex_weight(t);
    }
  }

  void move(const graph::TaskGraph& g, int t, int from, int to) {
    if (!active) return;
    if (from != core::kUnassigned)
      load[static_cast<std::size_t>(from)] -= g.vertex_weight(t);
    if (to != core::kUnassigned)
      load[static_cast<std::size_t>(to)] += g.vertex_weight(t);
  }

  /// Vertex weight resident on p's alive neighbours.
  double neighborhood(const topo::FaultOverlay& overlay, int p) const {
    double sum = 0.0;
    for (const int q : overlay.neighbors(p))
      sum += load[static_cast<std::size_t>(q)];
    return sum;
  }
};

/// Neighbourhood resident-load imbalance (max / mean over alive
/// processors); 1.0 where the notion is undefined.
double neighborhood_imbalance(const graph::TaskGraph& g,
                              const topo::FaultOverlay& overlay,
                              const core::Mapping& m) {
  if (!overlay.has_adjacency()) return 1.0;
  LoadMap loads;
  loads.init(g, overlay, m, true);
  double sum = 0.0;
  double mx = 0.0;
  int alive = 0;
  for (const int p : overlay.alive_procs()) {
    const double l = loads.neighborhood(overlay, p);
    sum += l;
    mx = std::max(mx, l);
    ++alive;
  }
  const double mean = alive > 0 ? sum / static_cast<double>(alive) : 0.0;
  return mean > 0.0 ? mx / mean : 1.0;
}

}  // namespace

EvacuationResult evacuate(const graph::TaskGraph& g,
                          const topo::FaultOverlay& overlay,
                          const core::Mapping& previous,
                          const EvacuateOptions& options) {
  OBS_SPAN("evacuate/run");
  const int n = g.num_vertices();
  TOPOMAP_REQUIRE(static_cast<int>(previous.size()) == n,
                  "evacuate: placement size != task count");
  TOPOMAP_REQUIRE(options.refine_passes >= 0,
                  "evacuate: refine_passes must be >= 0");
  TOPOMAP_REQUIRE(options.load_weight >= 0.0,
                  "evacuate: load_weight must be >= 0");
  TOPOMAP_REQUIRE(n <= overlay.num_alive(),
                  "evacuate: " + std::to_string(n) + " tasks exceed " +
                      std::to_string(overlay.num_alive()) +
                      " alive processors on " + overlay.name());
  // Fail up front with the disconnecting fault named, instead of a bare
  // "disconnected pair" from a distance query halfway through placement.
  const topo::ComponentSplit split = topo::connected_components(overlay);
  TOPOMAP_REQUIRE(!split.partitioned(),
                  "evacuate: cannot evacuate across a network partition — " +
                      topo::describe_partition(overlay, split) +
                      "; restore connectivity first, or remap with "
                      "map_on_largest_component to quarantine the overflow");

  // Validate the previous placement (in-range, injective) and split tasks
  // into survivors and stranded; collect the free alive processors.
  std::vector<char> used(static_cast<std::size_t>(overlay.size()), 0);
  std::vector<int> stranded;
  EvacuationResult result;
  result.mapping.assign(static_cast<std::size_t>(n), core::kUnassigned);
  for (int t = 0; t < n; ++t) {
    const int p = previous[static_cast<std::size_t>(t)];
    TOPOMAP_REQUIRE(p >= 0 && p < overlay.size(),
                    "evacuate: task " + std::to_string(t) +
                        " placed out of range");
    TOPOMAP_REQUIRE(!used[static_cast<std::size_t>(p)],
                    "evacuate: previous placement is not one-to-one");
    used[static_cast<std::size_t>(p)] = 1;
    if (overlay.is_alive(p))
      result.mapping[static_cast<std::size_t>(t)] = p;
    else
      stranded.push_back(t);
  }
  result.stranded = static_cast<int>(stranded.size());

  std::vector<int> free_procs;
  for (int p : overlay.alive_procs())
    if (!used[static_cast<std::size_t>(p)]) free_procs.push_back(p);
  TOPOMAP_REQUIRE(static_cast<int>(free_procs.size()) >= result.stranded,
                  "evacuate: " + std::to_string(result.stranded) +
                      " stranded tasks but only " +
                      std::to_string(free_procs.size()) +
                      " free alive processors");

  // Place stranded tasks heaviest-communicator first: each takes the free
  // processor minimizing the destination score — its byte-weighted distance
  // to placed neighbours, plus (when load_weight > 0 and the topology has
  // links) the neighbourhood-load contention term.
  const bool use_load = options.load_weight > 0.0 && overlay.has_adjacency();
  LoadMap loads;
  loads.init(g, overlay, result.mapping, use_load);
  const auto dest_score = [&](int t, int p) {
    double score = incident_cost(g, overlay, result.mapping, t, p);
    if (use_load)
      score += options.load_weight * g.vertex_weight(t) *
               loads.neighborhood(overlay, p);
    return score;
  };
  std::stable_sort(stranded.begin(), stranded.end(), [&g](int a, int b) {
    return g.comm_bytes(a) > g.comm_bytes(b);
  });
  std::vector<char> free_taken(free_procs.size(), 0);
  for (int t : stranded) {
    int best_i = -1;
    double best_cost = 0.0;
    for (int i = 0; i < static_cast<int>(free_procs.size()); ++i) {
      if (free_taken[static_cast<std::size_t>(i)]) continue;
      const double cost =
          dest_score(t, free_procs[static_cast<std::size_t>(i)]);
      if (best_i < 0 || cost < best_cost) {
        best_i = i;
        best_cost = cost;
      }
    }
    TOPOMAP_ASSERT(best_i >= 0, "no free processor for stranded task");
    free_taken[static_cast<std::size_t>(best_i)] = 1;
    result.mapping[static_cast<std::size_t>(t)] =
        free_procs[static_cast<std::size_t>(best_i)];
    loads.move(g, t, core::kUnassigned,
               free_procs[static_cast<std::size_t>(best_i)]);
  }

  // Bounded refinement: only evacuated tasks move again.  Each sweep gives
  // every stranded task its best strict improvement among (a) relocating to
  // a still-free processor — no extra migration — and (b) swapping with any
  // other task — one extra migration, counted via refine_swaps.  Scores use
  // dest_score, so with load_weight > 0 refinement keeps trading the same
  // hop-bytes + contention objective; the moving task's own weight is
  // lifted out of the load map while its candidates are scored so it never
  // penalizes destinations adjacent to its current seat.
  for (int pass = 0; pass < options.refine_passes; ++pass) {
    bool improved = false;
    for (int t : stranded) {
      const int pt = result.mapping[static_cast<std::size_t>(t)];
      loads.move(g, t, pt, core::kUnassigned);
      const double here = dest_score(t, pt);
      // (a) best free processor.
      int best_free = -1;
      double best_delta = -1e-12;
      for (int i = 0; i < static_cast<int>(free_procs.size()); ++i) {
        if (free_taken[static_cast<std::size_t>(i)]) continue;
        const double delta =
            dest_score(t, free_procs[static_cast<std::size_t>(i)]) - here;
        if (delta < best_delta) {
          best_delta = delta;
          best_free = i;
        }
      }
      // (b) best swap partner.  Deltas exclude the t-u edge itself, whose
      // length is symmetric under the swap; both tasks' weights are lifted
      // out of the load map so each side scores the other's seat cleanly.
      int best_swap = -1;
      for (int u = 0; u < n; ++u) {
        if (u == t) continue;
        const int pu = result.mapping[static_cast<std::size_t>(u)];
        core::Mapping& m = result.mapping;
        m[static_cast<std::size_t>(t)] = core::kUnassigned;
        m[static_cast<std::size_t>(u)] = core::kUnassigned;
        loads.move(g, u, pu, core::kUnassigned);
        const double before = dest_score(t, pt) + dest_score(u, pu);
        const double after = dest_score(t, pu) + dest_score(u, pt);
        loads.move(g, u, core::kUnassigned, pu);
        m[static_cast<std::size_t>(t)] = pt;
        m[static_cast<std::size_t>(u)] = pu;
        const double delta = after - before;
        if (delta < best_delta) {
          best_delta = delta;
          best_swap = u;
          best_free = -1;
        }
      }
      if (best_swap >= 0) {
        loads.move(g, best_swap,
                   result.mapping[static_cast<std::size_t>(best_swap)], pt);
        std::swap(result.mapping[static_cast<std::size_t>(t)],
                  result.mapping[static_cast<std::size_t>(best_swap)]);
        ++result.refine_swaps;
        improved = true;
      } else if (best_free >= 0) {
        // t's old slot opens up; mark it free and take the new one.
        for (int i = 0; i < static_cast<int>(free_procs.size()); ++i)
          if (free_procs[static_cast<std::size_t>(i)] == pt)
            free_taken[static_cast<std::size_t>(i)] = 0;
        free_taken[static_cast<std::size_t>(best_free)] = 1;
        result.mapping[static_cast<std::size_t>(t)] =
            free_procs[static_cast<std::size_t>(best_free)];
        improved = true;
      }
      loads.move(g, t, core::kUnassigned,
                 result.mapping[static_cast<std::size_t>(t)]);
    }
    if (!improved) break;
  }

  result.migrations = count_migrations(previous, result.mapping);
  result.hop_bytes = core::hop_bytes(g, overlay, result.mapping);
  result.load_imbalance = neighborhood_imbalance(g, overlay, result.mapping);
  OBS_COUNTER_ADD("evacuate/calls", 1);
  OBS_COUNTER_ADD("evacuate/stranded", result.stranded);
  OBS_COUNTER_ADD("evacuate/migrations", result.migrations);
  OBS_COUNTER_ADD("evacuate/refine_swaps", result.refine_swaps);
  OBS_VALUE("evacuate/load_imbalance", result.load_imbalance);
  return result;
}

EvacuationResult evacuate(const graph::TaskGraph& g,
                          const topo::FaultOverlay& overlay,
                          const core::Mapping& previous, int refine_passes) {
  EvacuateOptions options;
  options.refine_passes = refine_passes;
  return evacuate(g, overlay, previous, options);
}

EvacuateComparison compare_evacuate_vs_remap(
    const graph::TaskGraph& g, const topo::FaultOverlay& overlay,
    const core::Mapping& previous, const core::MappingStrategy& strategy,
    Rng& rng, int refine_passes) {
  EvacuateOptions options;
  options.refine_passes = refine_passes;
  return compare_evacuate_vs_remap(g, overlay, previous, strategy, rng,
                                   options);
}

EvacuateComparison compare_evacuate_vs_remap(
    const graph::TaskGraph& g, const topo::FaultOverlay& overlay,
    const core::Mapping& previous, const core::MappingStrategy& strategy,
    Rng& rng, const EvacuateOptions& options) {
  EvacuateComparison cmp;
  cmp.evac = evacuate(g, overlay, previous, options);
  cmp.full_mapping = core::map_on_alive(strategy, g, overlay, rng);
  cmp.full_migrations = 0;
  for (std::size_t i = 0; i < previous.size(); ++i)
    if (previous[i] != cmp.full_mapping[i]) ++cmp.full_migrations;
  cmp.full_hop_bytes = core::hop_bytes(g, overlay, cmp.full_mapping);
  return cmp;
}

}  // namespace topomap::rts
