// Dynamic load balancing over time (extension; the operational context of
// the paper's strategies inside Charm++).
//
// Persistent objects drift in compute load and communication volume
// between LB steps.  At every epoch the driver remaps and accounts both
// mapping quality (hops-per-byte, imbalance) and *migration cost* — the
// number of objects whose processor changed, which in Charm++ is real
// PUP-serialised data movement.
//
// Two policies:
//   * scratch     — rerun the full two-phase pipeline every epoch: best
//                   quality, but group relabelling churns placements;
//   * incremental — keep the phase-1 grouping from epoch 0 and improve the
//                   previous epoch's group mapping with RefineTopoLB
//                   sweeps: slightly worse hops-per-byte, far fewer
//                   migrations.
//
// Processor failures can be injected at epoch boundaries (FaultEvent).  A
// fault shrinks the machine: the driver regroups the objects into
// alive-many groups and maps them onto the compact alive subset of a
// topo::FaultOverlay; subsequent incremental epochs refine on that subset.
#pragma once

#include <vector>

#include "runtime/lb_manager.hpp"

namespace topomap::rts {

enum class RemapPolicy { kScratch, kIncremental };

/// Processor `proc` dies at the start of epoch `epoch` (before that epoch's
/// remap), forcing the balancer onto the shrunken alive machine.
struct FaultEvent {
  int epoch = 0;
  int proc = 0;
};

struct DynamicLBConfig {
  int epochs = 8;
  /// Per-epoch multiplicative drift: each vertex weight / edge byte count
  /// is scaled by uniform(1 - drift, 1 + drift).
  double load_drift = 0.3;
  double comm_drift = 0.15;
  RemapPolicy policy = RemapPolicy::kScratch;
  /// RefineTopoLB sweeps per epoch in incremental mode.
  int refine_passes = 4;
  PipelineConfig pipeline;
  /// Processor failures injected during the run.  Epochs must lie in
  /// [0, epochs); a pipeline partitioner is required once any processor
  /// has died (objects then outnumber the alive processors).
  std::vector<FaultEvent> faults;
};

struct DynamicEpochStats {
  int epoch = 0;
  double hops_per_byte = 0.0;
  double load_imbalance = 1.0;
  /// Objects whose processor changed relative to the previous epoch
  /// (0 for the first epoch by definition).
  int migrations = 0;
  /// Processors alive during this epoch.
  int alive_procs = 0;
};

/// Run the drifting-workload simulation; returns one stats row per epoch.
std::vector<DynamicEpochStats> run_dynamic_lb(const graph::TaskGraph& initial,
                                              const topo::Topology& topo,
                                              const DynamicLBConfig& config,
                                              Rng& rng);

}  // namespace topomap::rts
