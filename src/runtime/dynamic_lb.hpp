// Dynamic load balancing over time (extension; the operational context of
// the paper's strategies inside Charm++).
//
// Persistent objects drift in compute load and communication volume
// between LB steps.  At every epoch the driver remaps and accounts both
// mapping quality (hops-per-byte, imbalance) and *migration cost* — the
// number of objects whose processor changed, which in Charm++ is real
// PUP-serialised data movement.
//
// Two policies:
//   * scratch     — rerun the full two-phase pipeline every epoch: best
//                   quality, but group relabelling churns placements;
//   * incremental — keep the phase-1 grouping from epoch 0 and improve the
//                   previous epoch's group mapping with RefineTopoLB
//                   sweeps: slightly worse hops-per-byte, far fewer
//                   migrations.
//
// Faults arrive at epoch boundaries as tagged events — node or link, fail,
// degrade, or recover (Event; the legacy FaultEvent node-death list still
// works).  The runtime owns a long-lived topo::DistanceCache plane that it
// repairs incrementally after every event, a quarantine ledger for network
// partitions, and a self-validation loop:
//
//  * a fault that shrinks the machine regroups the objects onto the
//    compact alive subset of a topo::FaultOverlay;
//  * a fault that *splits* the machine maps the active objects onto the
//    primary (largest) component while objects resident on minority
//    components are quarantined — frozen in place, migrated nowhere —
//    until connectivity returns, at which point they are re-admitted in
//    place (their frozen processors are alive and reachable again, so
//    re-admission itself migrates nothing) and the normal remap resumes;
//  * recovery events grow the machine back; the plane follows through
//    DistanceCache::repair_*_restore;
//  * after every event batch core::validate_state cross-checks the
//    repaired plane (and after every placement, the full system state).
//    Any violation triggers the repair-or-rebuild fallback — an obs-counted
//    full plane rebuild (and a from-scratch regroup for placement
//    violations) instead of a crash.
#pragma once

#include <vector>

#include "runtime/lb_manager.hpp"
#include "topo/distance_cache.hpp"
#include "topo/fault_overlay.hpp"

namespace topomap::rts {

enum class RemapPolicy { kScratch, kIncremental };

/// Legacy node-death event: processor `proc` dies at the start of epoch
/// `epoch` (before that epoch's remap).  Kept for callers predating the
/// generalized Event; equivalent to {epoch, kNodeFail, proc}.
struct FaultEvent {
  int epoch = 0;
  int proc = 0;
};

/// What happens to the machine at an epoch boundary.
enum class EventKind {
  kNodeFail,           ///< processor a dies
  kNodeRestore,        ///< processor a comes back
  kLinkFail,           ///< link a-b hard-fails
  kLinkRestore,        ///< hard-failed link a-b returns, pristine
  kLinkDegrade,        ///< link a-b drops to `health` in (0, 1)
  kLinkRestoreHealth,  ///< degraded link a-b returns to full health
};

struct Event {
  int epoch = 0;
  EventKind kind = EventKind::kNodeFail;
  int a = 0;            ///< processor (node events) / first link endpoint
  int b = 0;            ///< second link endpoint (link events)
  double health = 1.0;  ///< kLinkDegrade only
  /// Strict events throw on preconditions the machine state violates
  /// (degrading a dead link, etc.) — right for hand-written specs.
  /// Non-strict events are *skipped* instead — right for generated chaos
  /// timelines, where a scheduled repair crew can find its link already
  /// dead for other reasons.  Idempotent no-ops (failing the dead,
  /// restoring the alive) are skipped under both.
  bool strict = true;
};

/// Apply one event to the overlay and (when non-null) incrementally repair
/// the distance plane.  Returns {applied, plane rows repaired}; see
/// Event::strict for the skip-vs-throw contract.  Exposed so the chaos
/// generator's shadow machine replays exactly the semantics the runtime
/// will.
struct EventOutcome {
  bool applied = false;
  int rows_repaired = 0;
};
EventOutcome apply_event(topo::FaultOverlay& overlay,
                         topo::DistanceCache* plane, const Event& ev);

/// Knobs of the self-validation / repair-or-rebuild loop.
struct ResilienceOptions {
  /// Run core::validate_state after every event batch and every placement.
  bool validate = true;
  /// Plane rows per check: 0 = every alive row (see ValidateOptions).
  int plane_rows = 0;
  /// Cross-check link attribution against hop-bytes where applicable.
  bool check_attribution = true;
  /// Chaos injection: ordinals (counted over *applied* events) whose
  /// incremental plane repair is silently dropped, leaving the plane stale
  /// on purpose.  Validation must catch it and trigger the rebuild
  /// fallback — this is how the soak proves the loop actually engages.
  std::vector<int> skip_repairs;
};

struct DynamicLBConfig {
  int epochs = 8;
  /// Per-epoch multiplicative drift: each vertex weight / edge byte count
  /// is scaled by uniform(1 - drift, 1 + drift).
  double load_drift = 0.3;
  double comm_drift = 0.15;
  RemapPolicy policy = RemapPolicy::kScratch;
  /// RefineTopoLB sweeps per epoch in incremental mode.
  int refine_passes = 4;
  PipelineConfig pipeline;
  /// Legacy processor-failure list; merged (first) into the event timeline.
  std::vector<FaultEvent> faults;
  /// Generalized fault/recovery timeline.  Epochs must lie in [0, epochs);
  /// a pipeline partitioner is required once any processor can die.
  std::vector<Event> events;
  ResilienceOptions resilience;
};

struct DynamicEpochStats {
  int epoch = 0;
  /// Hop-equivalents per byte on the active quotient: the raw value is
  /// divided by the machine's distance_scale() so epochs with and without
  /// soft faults report in the same unit.
  double hops_per_byte = 0.0;
  double load_imbalance = 1.0;
  /// Objects whose processor changed relative to the previous epoch
  /// (0 for the first epoch by definition).
  int migrations = 0;
  /// Processors alive during this epoch.
  int alive_procs = 0;
  /// Connected components of the alive machine (1 = whole).
  int components = 1;
  /// Objects quarantined on minority components this epoch.
  int quarantined = 0;
  int events_applied = 0;
  int events_skipped = 0;
  /// Plane rows touched by incremental repairs this epoch.
  int plane_rows_repaired = 0;
  /// Validation caught a stale plane and rebuilt it this epoch.
  bool plane_rebuilt = false;
};

/// Everything a soak run wants to assert on.
struct DynamicLBRun {
  std::vector<DynamicEpochStats> history;
  std::vector<int> final_placement;
  std::vector<char> final_quarantined;  ///< per-object, 1 = still frozen
  int events_applied = 0;
  int events_skipped = 0;
  /// Validation-triggered incremental-to-rebuild fallbacks.
  int plane_rebuilds = 0;
  /// Individual invariant violations detected (every one was repaired; an
  /// unrepairable violation throws invariant_error instead).
  int violations = 0;
  int max_quarantined = 0;
  int partitioned_epochs = 0;
};

/// Run the drifting-workload simulation with the full event/recovery/
/// validation machinery.
DynamicLBRun run_dynamic_lb_detailed(const graph::TaskGraph& initial,
                                     const topo::Topology& topo,
                                     const DynamicLBConfig& config, Rng& rng);

/// Compatibility wrapper: just the per-epoch stats rows.
std::vector<DynamicEpochStats> run_dynamic_lb(const graph::TaskGraph& initial,
                                              const topo::Topology& topo,
                                              const DynamicLBConfig& config,
                                              Rng& rng);

}  // namespace topomap::rts
