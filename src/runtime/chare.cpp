#include "runtime/chare.hpp"

namespace topomap::rts {

void Chare::send(int dst, double bytes, std::uint64_t tag) {
  TOPOMAP_ASSERT(runtime_ != nullptr, "chare used outside a runtime");
  runtime_->enqueue(index_, dst, bytes, tag);
}

void Chare::charge(double load) {
  TOPOMAP_ASSERT(runtime_ != nullptr, "chare used outside a runtime");
  runtime_->record_load(index_, load);
}

void Chare::contribute_done() {
  TOPOMAP_ASSERT(runtime_ != nullptr, "chare used outside a runtime");
  runtime_->mark_done(index_);
}

ChareRuntime& Chare::runtime() const {
  TOPOMAP_ASSERT(runtime_ != nullptr, "chare used outside a runtime");
  return *runtime_;
}

int ChareRuntime::insert(std::unique_ptr<Chare> chare) {
  TOPOMAP_REQUIRE(chare != nullptr, "null chare");
  TOPOMAP_REQUIRE(!sealed_, "cannot insert chares after execution started");
  const int idx = num_chares();
  chare->runtime_ = this;
  chare->index_ = idx;
  chares_.push_back(std::move(chare));
  done_.push_back(0);
  placement_.push_back(0);
  db_ = LBDatabase(num_chares());
  return idx;
}

int ChareRuntime::apply_placement(const std::vector<int>& chare_to_proc) {
  TOPOMAP_REQUIRE(static_cast<int>(chare_to_proc.size()) == num_chares(),
                  "placement size does not match chare count");
  int migrations = 0;
  for (int c = 0; c < num_chares(); ++c) {
    TOPOMAP_REQUIRE(chare_to_proc[static_cast<std::size_t>(c)] >= 0,
                    "negative processor id");
    if (placement_[static_cast<std::size_t>(c)] !=
        chare_to_proc[static_cast<std::size_t>(c)]) {
      placement_[static_cast<std::size_t>(c)] =
          chare_to_proc[static_cast<std::size_t>(c)];
      ++migrations;
    }
  }
  return migrations;
}

int ChareRuntime::processor_of(int chare) const {
  TOPOMAP_REQUIRE(chare >= 0 && chare < num_chares(), "chare out of range");
  return placement_[static_cast<std::size_t>(chare)];
}

void ChareRuntime::start(int chare, std::uint64_t tag) {
  TOPOMAP_REQUIRE(chare >= 0 && chare < num_chares(), "chare out of range");
  sealed_ = true;
  queue_.push_back(Msg{-1, chare, 0.0, tag});
}

void ChareRuntime::enqueue(int src, int dst, double bytes, std::uint64_t tag) {
  TOPOMAP_REQUIRE(dst >= 0 && dst < num_chares(), "destination out of range");
  sealed_ = true;
  if (src >= 0 && src != dst && bytes > 0.0) {
    db_.add_comm(src, dst, bytes);
    if (placement_[static_cast<std::size_t>(src)] ==
        placement_[static_cast<std::size_t>(dst)])
      intra_bytes_ += bytes;
    else
      inter_bytes_ += bytes;
  }
  queue_.push_back(Msg{src, dst, bytes, tag});
}

void ChareRuntime::record_load(int chare, double load) {
  db_.add_load(chare, load);
}

void ChareRuntime::mark_done(int chare) {
  if (!done_[static_cast<std::size_t>(chare)]) {
    done_[static_cast<std::size_t>(chare)] = 1;
    ++done_count_;
  }
}

void ChareRuntime::run_to_quiescence(std::uint64_t max_messages) {
  while (!queue_.empty()) {
    TOPOMAP_ASSERT(processed_ < max_messages,
                   "message budget exhausted — runaway chare program?");
    const Msg msg = queue_.front();
    queue_.pop_front();
    ++processed_;
    chares_[static_cast<std::size_t>(msg.dst)]->on_message(msg.src, msg.bytes,
                                                           msg.tag);
  }
}

void ChareRuntime::reset_measurements() {
  db_ = LBDatabase(num_chares());
  intra_bytes_ = 0.0;
  inter_bytes_ = 0.0;
}

}  // namespace topomap::rts
