// Two-phase load-balancing pipeline (paper §4): partition the measured
// object graph into p balanced groups (phase 1, METIS-style), then map the
// p-vertex quotient graph onto the p processors with a topology-aware
// strategy (phase 2), optionally followed by RefineTopoLB.
#pragma once

#include "core/mapping.hpp"
#include "core/strategy.hpp"
#include "graph/task_graph.hpp"
#include "partition/partition.hpp"
#include "runtime/lb_database.hpp"
#include "support/rng.hpp"
#include "topo/topology.hpp"

namespace topomap::rts {

struct PipelineConfig {
  /// Phase 1.  Ignored when the object count already equals the processor
  /// count (no clustering needed, paper §5.2).
  part::PartitionerPtr partitioner;
  /// Phase 2 mapping strategy.
  core::StrategyPtr mapper;
  /// Extra RefineTopoLB sweeps after mapping (0 = none).
  int refine_passes = 0;
};

struct PipelineResult {
  /// Final object placement: object -> processor.
  std::vector<int> object_to_proc;
  /// Phase-1 group of each object.
  std::vector<int> group_of_object;
  /// Phase-2 mapping: group -> processor.
  core::Mapping group_mapping;

  // Quality metrics, all measured on the quotient (group) graph.
  double hop_bytes = 0.0;
  double hops_per_byte = 0.0;
  double edge_cut_bytes = 0.0;      ///< phase-1 inter-group bytes
  double load_imbalance = 1.0;      ///< max/avg group load
  double quotient_avg_degree = 0.0; ///< paper §5.2.3 reports this
};

/// Run the two-phase pipeline on an object graph.
/// Requires objects >= processors.
PipelineResult run_two_phase(const graph::TaskGraph& objects,
                             const topo::Topology& topo,
                             const PipelineConfig& config, Rng& rng);

/// Convenience: measure `db`'s task graph, then run the pipeline — the
/// paper's +LBSim replay step.
PipelineResult replay_database(const LBDatabase& db,
                               const topo::Topology& topo,
                               const PipelineConfig& config, Rng& rng);

}  // namespace topomap::rts
