// AMPI-style rank reordering (paper abstract: the strategies are available
// "to many applications written using Charm++ as well as MPI").
//
// MPI applications do not migrate objects, but they can permute the
// rank -> processor binding at startup (a rankfile / MPICH_RANK_REORDER).
// This facade takes a measured rank-to-rank communication matrix, runs any
// topomap strategy, and emits the permutation — the standard way
// topology-aware mapping reaches plain MPI codes.
//
// Matrix file format (whitespace-separated):
//   ranks N
//   N x N doubles, entry (i, j) = bytes rank i sent to rank j
// The matrix is symmetrised (bytes(i,j) + bytes(j,i) per undirected pair);
// the diagonal is ignored.
//
// Output format (one line per rank): "rank processor".
#pragma once

#include <iosfwd>
#include <string>

#include "core/mapping.hpp"
#include "core/strategy.hpp"
#include "graph/task_graph.hpp"
#include "support/rng.hpp"
#include "topo/topology.hpp"

namespace topomap::rts {

/// Parse a rank communication matrix into a task graph (ranks = vertices,
/// unit compute weights).  Throws precondition_error on malformed input.
graph::TaskGraph read_comm_matrix(std::istream& is);
graph::TaskGraph read_comm_matrix_file(const std::string& path);

/// Write a dense communication matrix for a task graph (for round-trips
/// and for exporting instrumented runs to external tools).
void write_comm_matrix(std::ostream& os, const graph::TaskGraph& g);

/// Compute the rank -> processor permutation with `strategy`.
/// Requires one rank per processor.
core::Mapping reorder_ranks(const graph::TaskGraph& ranks,
                            const topo::Topology& topo,
                            const core::MappingStrategy& strategy, Rng& rng);

/// Serialise / parse the "rank processor" mapping file.
void write_rank_mapping(std::ostream& os, const core::Mapping& m);
core::Mapping read_rank_mapping(std::istream& is);

}  // namespace topomap::rts
