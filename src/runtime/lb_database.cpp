#include "runtime/lb_database.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"

namespace topomap::rts {

namespace {
constexpr const char* kMagic = "topomap-lbdump";
constexpr int kVersion = 1;
}  // namespace

LBDatabase::LBDatabase(int num_objects) {
  TOPOMAP_REQUIRE(num_objects >= 0, "negative object count");
  loads_.assign(static_cast<std::size_t>(num_objects), 0.0);
}

void LBDatabase::check_object(int id) const {
  TOPOMAP_REQUIRE(id >= 0 && id < num_objects(), "object id out of range");
}

void LBDatabase::add_load(int object, double load) {
  check_object(object);
  TOPOMAP_REQUIRE(load >= 0.0, "negative load");
  loads_[static_cast<std::size_t>(object)] += load;
}

double LBDatabase::load(int object) const {
  check_object(object);
  return loads_[static_cast<std::size_t>(object)];
}

void LBDatabase::add_comm(int a, int b, double bytes) {
  check_object(a);
  check_object(b);
  TOPOMAP_REQUIRE(a != b, "self communication is not recorded");
  TOPOMAP_REQUIRE(bytes > 0.0, "bytes must be positive");
  comm_[std::minmax(a, b)] += bytes;
}

double LBDatabase::comm(int a, int b) const {
  check_object(a);
  check_object(b);
  const auto it = comm_.find(std::minmax(a, b));
  return it == comm_.end() ? 0.0 : it->second;
}

void LBDatabase::merge(const LBDatabase& other) {
  TOPOMAP_REQUIRE(other.num_objects() == num_objects(),
                  "cannot merge databases with different object counts");
  for (int i = 0; i < num_objects(); ++i)
    loads_[static_cast<std::size_t>(i)] +=
        other.loads_[static_cast<std::size_t>(i)];
  for (const auto& [key, bytes] : other.comm_) comm_[key] += bytes;
}

graph::TaskGraph LBDatabase::to_task_graph(const std::string& label) const {
  graph::TaskGraph::Builder b(label);
  for (double load : loads_) b.add_vertex(load);
  for (const auto& [key, bytes] : comm_)
    b.add_edge(key.first, key.second, bytes);
  return std::move(b).build();
}

double LBDatabase::total_comm_bytes() const {
  double total = 0.0;
  for (const auto& [key, bytes] : comm_) total += bytes;
  return total;
}

double LBDatabase::total_load() const {
  double total = 0.0;
  for (double l : loads_) total += l;
  return total;
}

void LBDatabase::save(std::ostream& os) const {
  os << kMagic << ' ' << kVersion << '\n';
  os << num_objects() << ' ' << comm_.size() << '\n';
  os << std::setprecision(17);
  for (double l : loads_) os << l << '\n';
  for (const auto& [key, bytes] : comm_)
    os << key.first << ' ' << key.second << ' ' << bytes << '\n';
}

void LBDatabase::save_file(const std::string& path) const {
  std::ofstream out(path);
  TOPOMAP_REQUIRE(static_cast<bool>(out), "cannot open dump file: " + path);
  save(out);
  TOPOMAP_REQUIRE(static_cast<bool>(out), "failed writing dump file: " + path);
}

LBDatabase LBDatabase::load_stream(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  TOPOMAP_REQUIRE(magic == kMagic, "not a topomap LB dump");
  TOPOMAP_REQUIRE(version == kVersion, "unsupported LB dump version");
  int objects = 0;
  std::size_t records = 0;
  is >> objects >> records;
  TOPOMAP_REQUIRE(is && objects >= 0, "corrupt LB dump header");
  LBDatabase db(objects);
  for (int i = 0; i < objects; ++i) {
    double load = 0.0;
    is >> load;
    TOPOMAP_REQUIRE(static_cast<bool>(is), "corrupt LB dump loads");
    db.loads_[static_cast<std::size_t>(i)] = load;
  }
  for (std::size_t r = 0; r < records; ++r) {
    int a = 0, b = 0;
    double bytes = 0.0;
    is >> a >> b >> bytes;
    TOPOMAP_REQUIRE(static_cast<bool>(is), "corrupt LB dump comm records");
    db.add_comm(a, b, bytes);
  }
  return db;
}

LBDatabase LBDatabase::load_file(const std::string& path) {
  std::ifstream in(path);
  TOPOMAP_REQUIRE(static_cast<bool>(in), "cannot open dump file: " + path);
  return load_stream(in);
}

}  // namespace topomap::rts
