#include "runtime/apps.hpp"

#include <vector>

#include "support/error.hpp"

namespace topomap::rts {

namespace {

// Shared message-driven iteration protocol for both app chares.
//
// Iteration k's compute consumes the boundary messages tagged k; iteration
// 1 has no dependencies.  Each compute step sends messages tagged k+1
// (feeding the neighbour's next iteration) — also after the final
// iteration, matching the paper's benchmark where every iteration sends;
// those trailing messages are received and ignored.
class IterativeChare : public Chare {
 public:
  IterativeChare(int iterations, int degree)
      : iterations_(iterations),
        degree_(degree),
        received_(static_cast<std::size_t>(iterations) + 2, 0) {}

  void on_message(int src, double, std::uint64_t tag) override {
    if (src >= 0) {
      TOPOMAP_ASSERT(tag < received_.size(), "iteration tag out of range");
      ++received_[static_cast<std::size_t>(tag)];
    } else {
      step();  // bootstrap: iteration 1 has no dependencies
    }
    while (next_iter_ <= iterations_ &&
           received_[static_cast<std::size_t>(next_iter_)] == degree_) {
      step();
    }
  }

 protected:
  /// Compute load for one iteration.
  virtual double iteration_work() const = 0;
  /// Emit this iteration's messages; `tag` is the value to send with.
  virtual void send_boundaries(std::uint64_t tag) = 0;

 private:
  void step() {
    charge(iteration_work());
    send_boundaries(static_cast<std::uint64_t>(next_iter_) + 1);
    ++next_iter_;
    if (next_iter_ > iterations_) contribute_done();
  }

  const int iterations_;
  const int degree_;
  std::vector<int> received_;
  int next_iter_ = 1;  // iteration to compute next
};

/// Hand-written 2D Jacobi chare (paper §5.2 benchmark program).
class Jacobi2DChare final : public IterativeChare {
 public:
  Jacobi2DChare(const JacobiConfig& config, std::vector<int> neighbors)
      : IterativeChare(config.iterations,
                       static_cast<int>(neighbors.size())),
        config_(config),
        neighbors_(std::move(neighbors)) {}

 private:
  double iteration_work() const override {
    return config_.work_per_iteration;
  }
  void send_boundaries(std::uint64_t tag) override {
    for (int nbr : neighbors_) send(nbr, config_.message_bytes, tag);
  }

  const JacobiConfig config_;
  const std::vector<int> neighbors_;
};

/// Generic edge-exchange chare driven by a task-graph row.
class ExchangeChare final : public IterativeChare {
 public:
  ExchangeChare(const graph::TaskGraph& g, int vertex, int iterations)
      : IterativeChare(iterations, g.degree(vertex)), g_(g), vertex_(vertex) {}

 private:
  double iteration_work() const override { return g_.vertex_weight(vertex_); }
  void send_boundaries(std::uint64_t tag) override {
    for (const graph::Edge& e : g_.edges_of(vertex_))
      send(e.neighbor, e.bytes / 2.0, tag);
  }

  const graph::TaskGraph& g_;
  const int vertex_;
};

}  // namespace

LBDatabase run_jacobi2d(const JacobiConfig& config) {
  TOPOMAP_REQUIRE(config.nx >= 1 && config.ny >= 1, "bad grid");
  TOPOMAP_REQUIRE(config.iterations >= 1, "need at least one iteration");
  ChareRuntime runtime;
  auto id = [&config](int x, int y) { return x + config.nx * y; };
  for (int y = 0; y < config.ny; ++y) {
    for (int x = 0; x < config.nx; ++x) {
      std::vector<int> nbrs;
      if (x > 0) nbrs.push_back(id(x - 1, y));
      if (x + 1 < config.nx) nbrs.push_back(id(x + 1, y));
      if (y > 0) nbrs.push_back(id(x, y - 1));
      if (y + 1 < config.ny) nbrs.push_back(id(x, y + 1));
      runtime.insert(std::make_unique<Jacobi2DChare>(config, std::move(nbrs)));
    }
  }
  for (int c = 0; c < runtime.num_chares(); ++c) runtime.start(c);
  runtime.run_to_quiescence();
  TOPOMAP_ASSERT(runtime.all_done(), "jacobi2d did not reach quiescence");
  return runtime.database();
}

LBDatabase run_graph_exchange(const graph::TaskGraph& g, int iterations) {
  TOPOMAP_REQUIRE(iterations >= 1, "need at least one iteration");
  ChareRuntime runtime;
  for (int v = 0; v < g.num_vertices(); ++v)
    runtime.insert(std::make_unique<ExchangeChare>(g, v, iterations));
  for (int c = 0; c < runtime.num_chares(); ++c) runtime.start(c);
  runtime.run_to_quiescence();
  TOPOMAP_ASSERT(runtime.all_done(), "graph exchange did not reach quiescence");
  return runtime.database();
}

}  // namespace topomap::rts
