// Instrumented applications for the mini runtime.
//
// These generate the measured load databases the paper's evaluation feeds
// to its strategies:
//   * Jacobi2DApp — a hand-written message-driven 2D Jacobi benchmark
//     (paper §5.2's "jacobi-like communication pattern" program);
//   * run_graph_exchange — a generic BSP exchange along any task graph's
//     edges (used with graph::synthetic_md for the LeanMD-like workload).
#pragma once

#include "graph/task_graph.hpp"
#include "runtime/chare.hpp"

namespace topomap::rts {

struct JacobiConfig {
  int nx = 8;
  int ny = 8;
  int iterations = 10;
  /// Bytes per boundary-exchange message (one direction).
  double message_bytes = 1024.0;
  /// Compute load charged per chare per iteration.
  double work_per_iteration = 1.0;
};

/// Run the message-driven 2D Jacobi program to completion and return the
/// measured database (nx*ny objects; 4-point neighbour communication).
LBDatabase run_jacobi2d(const JacobiConfig& config);

/// Generic instrumented exchange: chare v sends bytes(e)/2 along each
/// incident edge per iteration and charges its vertex weight as load.
/// After `iterations` rounds the recorded database's task graph equals the
/// input graph scaled by `iterations` (a tested invariant).
LBDatabase run_graph_exchange(const graph::TaskGraph& g, int iterations);

}  // namespace topomap::rts
