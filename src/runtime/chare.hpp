// Mini message-driven runtime — the Charm++ substitute (DESIGN.md S6).
//
// A ChareRuntime hosts an array of migratable "chares" (compute objects)
// and a FIFO message scheduler.  Chares react to messages (message-driven
// execution, no global barriers), charge their measured compute via
// charge(), and all sends/loads are transparently instrumented into an
// LBDatabase — the measurement half of the paper's load-balancing
// framework.  Execution is sequential and deterministic; the network
// simulator (netsim) models timing separately, which mirrors the paper's
// split between the emulated Charm++ run and BigNetSim.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "runtime/lb_database.hpp"
#include "support/error.hpp"

namespace topomap::rts {

class ChareRuntime;

/// A migratable compute object.  Subclasses implement on_message; they may
/// call send()/charge()/contribute_done() from inside it.
class Chare {
 public:
  virtual ~Chare() = default;

  /// A message of `bytes` with user `tag` arrived from chare `src`.
  virtual void on_message(int src, double bytes, std::uint64_t tag) = 0;

 protected:
  /// Enqueue a message to another chare (instrumented as communication).
  void send(int dst, double bytes, std::uint64_t tag);
  /// Account measured compute load for this chare.
  void charge(double load);
  /// Signal that this chare reached its termination condition.
  void contribute_done();

  int index() const { return index_; }
  ChareRuntime& runtime() const;

 private:
  friend class ChareRuntime;
  ChareRuntime* runtime_ = nullptr;
  int index_ = -1;
};

class ChareRuntime {
 public:
  ChareRuntime() = default;
  ChareRuntime(const ChareRuntime&) = delete;
  ChareRuntime& operator=(const ChareRuntime&) = delete;

  /// Insert a chare; returns its index.  All chares must be inserted
  /// before the first send.
  int insert(std::unique_ptr<Chare> chare);

  int num_chares() const { return static_cast<int>(chares_.size()); }

  /// Kick-start: deliver a zero-byte bootstrap message from the runtime
  /// (src = -1) to the chare.
  void start(int chare, std::uint64_t tag = 0);

  /// Process messages until the queue drains or every chare contributed
  /// done.  Throws invariant_error after `max_messages` deliveries
  /// (runaway-protection).
  void run_to_quiescence(std::uint64_t max_messages = 100'000'000);

  bool all_done() const { return done_count_ == num_chares(); }
  std::uint64_t messages_processed() const { return processed_; }

  /// Measurement window: loads and communication recorded so far.
  const LBDatabase& database() const { return db_; }
  /// Clear measurements (start a new window), keeping the chares.
  void reset_measurements();

  // --- placement / migration (the "apply the LB result" half) ---

  /// Move chares to the given processors; returns how many chares changed
  /// processor (the migration count a real runtime would PUP-serialise).
  /// All chares start on processor 0.
  int apply_placement(const std::vector<int>& chare_to_proc);

  int processor_of(int chare) const;

  /// Bytes sent between chares on the same / different processors under
  /// the current placement (accumulated alongside the LB database).
  double intra_processor_bytes() const { return intra_bytes_; }
  double inter_processor_bytes() const { return inter_bytes_; }

 private:
  friend class Chare;
  struct Msg {
    int src;
    int dst;
    double bytes;
    std::uint64_t tag;
  };
  void enqueue(int src, int dst, double bytes, std::uint64_t tag);
  void record_load(int chare, double load);
  void mark_done(int chare);

  std::vector<std::unique_ptr<Chare>> chares_;
  std::vector<char> done_;
  int done_count_ = 0;
  std::deque<Msg> queue_;
  std::uint64_t processed_ = 0;
  LBDatabase db_{0};
  std::vector<int> placement_;  ///< chare -> processor (default 0)
  double intra_bytes_ = 0.0;
  double inter_bytes_ = 0.0;
  bool sealed_ = false;  ///< set at first send/start; no inserts after
};

}  // namespace topomap::rts
