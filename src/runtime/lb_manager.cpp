#include "runtime/lb_manager.hpp"

#include <numeric>

#include "core/metrics.hpp"
#include "core/refine_topo_lb.hpp"
#include "graph/quotient.hpp"
#include "support/error.hpp"

namespace topomap::rts {

PipelineResult run_two_phase(const graph::TaskGraph& objects,
                             const topo::Topology& topo,
                             const PipelineConfig& config, Rng& rng) {
  TOPOMAP_REQUIRE(config.mapper != nullptr, "pipeline needs a mapper");
  const int n = objects.num_vertices();
  const int p = topo.size();
  TOPOMAP_REQUIRE(n >= p, "need at least one object per processor");

  PipelineResult result;

  // --- Phase 1: partition objects into p groups (skip when n == p). ---
  if (n == p) {
    result.group_of_object.resize(static_cast<std::size_t>(n));
    std::iota(result.group_of_object.begin(), result.group_of_object.end(),
              0);
  } else {
    TOPOMAP_REQUIRE(config.partitioner != nullptr,
                    "pipeline needs a partitioner when objects > processors");
    result.group_of_object =
        config.partitioner->partition(objects, p, rng).assignment;
  }
  result.edge_cut_bytes = part::edge_cut(objects, result.group_of_object);
  result.load_imbalance =
      part::load_imbalance(objects, result.group_of_object, p);

  // --- Phase 2: map the quotient graph onto the processors. ---
  const graph::TaskGraph quotient =
      (n == p) ? graph::TaskGraph{}
               : graph::quotient_graph(objects, result.group_of_object, p);
  const graph::TaskGraph& groups = (n == p) ? objects : quotient;
  result.quotient_avg_degree = graph::average_degree(groups);

  result.group_mapping = config.mapper->map(groups, topo, rng);
  if (config.refine_passes > 0) {
    result.group_mapping =
        core::refine_mapping(groups, topo, result.group_mapping,
                             config.refine_passes)
            .mapping;
  }

  result.hop_bytes = core::hop_bytes(groups, topo, result.group_mapping);
  result.hops_per_byte =
      core::hops_per_byte(groups, topo, result.group_mapping);

  // --- Compose: object -> group -> processor. ---
  result.object_to_proc.resize(static_cast<std::size_t>(n));
  for (int obj = 0; obj < n; ++obj)
    result.object_to_proc[static_cast<std::size_t>(obj)] =
        result.group_mapping[static_cast<std::size_t>(
            result.group_of_object[static_cast<std::size_t>(obj)])];
  return result;
}

PipelineResult replay_database(const LBDatabase& db,
                               const topo::Topology& topo,
                               const PipelineConfig& config, Rng& rng) {
  return run_two_phase(db.to_task_graph(), topo, config, rng);
}

}  // namespace topomap::rts
