// svc::EventLog — optional per-request JSONL log with size-based rotation.
//
// topomapd --event-log=FILE appends one JSON object per completed request
// (correlation id, request id, kind, outcome, and the per-stage timings in
// microseconds).  Rotation policy: when appending a line would push the
// file past max_bytes, the current file is renamed to FILE.1 (replacing
// any previous FILE.1) and a fresh FILE is started — so disk usage is
// bounded by ~2 * max_bytes and the tail of history survives a rotation.
// A single line larger than max_bytes is still written (and rotates on the
// next append) rather than being dropped.
//
// Writes are serialized under one mutex; the log is an operational
// artifact on the response path's tail, not a hot-loop structure.  I/O
// failures after open are reported once to stderr and the log disables
// itself — a full disk must not poison already-computed responses.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>

namespace topomap::svc {

class EventLog {
 public:
  EventLog() = default;
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Open (truncate) the log file.  Throws io_error when the path cannot
  /// be opened.  Not thread-safe against concurrent append(); call before
  /// serving.
  void open(std::string path, std::size_t max_bytes);

  bool active() const { return active_; }

  /// Append one line (a terminating '\n' is added), rotating first when
  /// the line would not fit.  No-op when inactive.
  void append(std::string_view line);

  /// Completed rotations since open() (for tests and status surfaces).
  std::size_t rotations() const;

 private:
  void rotate_locked();

  mutable std::mutex mu_;
  bool active_ = false;
  std::string path_;
  std::size_t max_bytes_ = 0;
  std::size_t size_ = 0;
  std::size_t rotations_ = 0;
  int fd_ = -1;
};

}  // namespace topomap::svc
