// svc::FlightRecorder — an always-cheap, fixed-capacity, lock-free ring of
// recent request-lifecycle events, for post-mortems of a stalled or slow
// daemon.
//
// Unlike the obs:: plane, the recorder is *always on* (it is not behind
// the TOPOMAP_OBS build gate): a stuck daemon in an uninstrumented build
// must still be debuggable.  The cost budget that buys is one relaxed
// fetch_add plus a handful of stores per event — no locks, no allocation,
// no syscalls — so recording never backpressures the request path.
//
// Concurrency: a per-slot seqlock.  Writers claim a slot by atomically
// advancing the cursor, bracket their field stores with an odd/even
// version (odd = write in progress), and never wait.  snapshot() walks the
// last `capacity` sequence numbers and keeps only slots whose version is
// stable and matches the expected sequence — an event being overwritten
// mid-read is skipped, not torn.  The recorder is a diagnostic ring: under
// heavy concurrent writes a snapshot is the *recent* history, not an
// atomic cut.
//
// Dumps: `topomap client --kind=flight` returns to_json() (schema
// "topomap.svc.flight" v1, validated by svc/metrics.hpp); SIGUSR1 makes
// topomapd write dump_text() to stderr via the server's self-pipe, so the
// handler itself stays async-signal-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "support/json.hpp"

namespace topomap::svc {

namespace json = ::topomap::support::json;

/// One lifecycle event.  Strings are fixed-size NUL-padded arrays so a
/// slot write is plain stores (no allocation inside the ring).
struct FlightEvent {
  std::uint64_t seq = 0;     ///< global event number (0-based)
  std::uint64_t t_ns = 0;    ///< obs::now_ns() steady-clock timestamp
  std::uint64_t dur_ns = 0;  ///< stage duration; 0 for point events
  char corr[16] = {};        ///< correlation id
  char kind[12] = {};        ///< request kind ("map", "status", ...)
  char stage[12] = {};       ///< accept|enqueue|dequeue|acquire|serialize|
                             ///< done|error
};

class FlightRecorder {
 public:
  /// Capacity is rounded up to a power of two (minimum 8).
  explicit FlightRecorder(std::size_t capacity = 256);

  /// Record one event (any thread, lock-free).  Strings longer than the
  /// slot fields are truncated.
  void record(std::string_view corr, std::string_view kind,
              std::string_view stage, std::uint64_t t_ns,
              std::uint64_t dur_ns = 0);

  /// The stable recent events, oldest first.  Slots being overwritten
  /// concurrently are skipped.
  std::vector<FlightEvent> snapshot() const;

  /// Total events ever recorded (recorded - capacity have been dropped).
  std::uint64_t total_recorded() const {
    return cursor_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Schema-versioned document: {"schema":"topomap.svc.flight",
  /// "schema_version":1,"capacity","recorded","events":[...]}.
  json::Value to_json() const;

  /// Human-readable dump, one line per event (SIGUSR1 path).
  void dump_text(std::ostream& os) const;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

 private:
  struct Slot {
    std::atomic<std::uint64_t> version{0};  ///< odd while being written
    FlightEvent ev;
  };

  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
  std::atomic<std::uint64_t> cursor_{0};
};

}  // namespace topomap::svc
