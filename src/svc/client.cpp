#include "svc/client.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "support/error.hpp"

namespace topomap::svc {

Client Client::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    throw io_error("client: socket path '" + path +
                   "' is empty or too long for a unix socket");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw io_error(std::string("client: socket() failed: ") +
                   std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    throw io_error("client: cannot connect to '" + path +
                   "': " + std::strerror(err) +
                   " (is topomapd running there?)");
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0 || res == nullptr)
    throw io_error("client: cannot resolve '" + host +
                   "': " + ::gai_strerror(rc));
  int fd = -1;
  int err = 0;
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      err = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    err = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0)
    throw io_error("client: cannot connect to " + host + ":" +
                   std::to_string(port) + ": " + std::strerror(err));
  return Client(fd);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Response Client::call(const Request& req) {
  write_frame(fd_, req.to_json().dump());
  std::string payload;
  if (!read_frame(fd_, payload))
    throw io_error("client: daemon closed the connection before responding");
  const Response resp = Response::from_json(json::Value::parse(payload));
  TOPOMAP_ASSERT(resp.id == req.id,
                 "client: response id '" + resp.id +
                     "' does not echo request id '" + req.id + "'");
  return resp;
}

}  // namespace topomap::svc
