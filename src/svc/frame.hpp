// Length-prefixed framing for the topomapd wire protocol.
//
// Every message on a topomapd connection — unix-domain socket or TCP, both
// directions — is one frame:
//
//   bytes 0..3   magic "TMP1" (protocol + framing version)
//   bytes 4..7   payload length, unsigned 32-bit big-endian
//   bytes 8..    payload: one UTF-8 JSON document (svc/protocol.hpp)
//
// The magic makes garbage rejection deterministic: a connection that sends
// anything but a frame header fails on byte 0 instead of being
// misinterpreted as a multi-gigabyte length.  Payloads above the
// configured cap are rejected before any allocation.  Framing errors are
// topomap::precondition_error (the peer violated the protocol); transport
// errors — mid-frame EOF, read/write failures — are topomap::io_error.
//
// Two consumption paths share the encoder: FrameDecoder is a pure
// incremental byte-stream decoder (unit-testable without sockets, and the
// single place truncation/oversize/garbage policy lives), while
// read_frame/write_frame do blocking I/O on a connected socket fd.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace topomap::svc {

/// Frame header: 4 magic bytes + 4 length bytes.
inline constexpr std::string_view kFrameMagic = "TMP1";
inline constexpr std::size_t kFrameHeaderSize = 8;

/// Default payload cap, applied by decoder and socket reader alike.
/// Generous for mapping responses (a 20000-task mapping is < 300 KB) while
/// bounding what one connection can make the daemon buffer.
inline constexpr std::size_t kDefaultMaxPayload = 16u << 20;

/// Wrap `payload` in a frame (header + bytes), ready to write to a peer.
std::string encode_frame(std::string_view payload);

/// Incremental decoder: feed() raw bytes as they arrive, next() pops
/// complete payloads in order.  Throws precondition_error from feed() the
/// moment the buffered prefix cannot be a valid frame (wrong magic, or a
/// declared length above the cap) — the connection is unrecoverable after
/// that, since frame boundaries are lost.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  /// Append bytes from the wire.  Validates as much of the buffered prefix
  /// as is decidable (magic immediately, length as soon as the header is
  /// complete).
  void feed(std::string_view bytes);

  /// The next complete payload, or nullopt when more bytes are needed.
  std::optional<std::string> next();

  /// True when no partial frame is buffered — the only clean place for a
  /// peer to close the connection.  EOF while !idle() is a truncated frame.
  bool idle() const { return buffer_.empty(); }

 private:
  void validate_prefix() const;

  std::size_t max_payload_;
  std::string buffer_;
};

/// Read one frame's payload from a connected socket.  Returns false on a
/// clean EOF at a frame boundary (peer closed).  Throws io_error on
/// mid-frame EOF or a read failure, precondition_error on protocol
/// garbage.
bool read_frame(int fd, std::string& payload,
                std::size_t max_payload = kDefaultMaxPayload);

/// Write one framed payload to a connected socket; throws io_error when
/// the peer is gone or the payload exceeds the cap a peer would accept.
void write_frame(int fd, std::string_view payload,
                 std::size_t max_payload = kDefaultMaxPayload);

}  // namespace topomap::svc
