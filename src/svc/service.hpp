// svc::Service — topomapd's request executor.
//
// One Service instance serves every connection: it owns the shared
// svc::CachePool and turns protocol Requests into Responses by running the
// same code paths the one-shot CLI runs (core::make_strategy_with_handle,
// core::map_on_alive, core::attribute_link_loads, rts::evacuate,
// core::find_optimal_mapping).  Determinism contract: a request's result —
// including the embedded mapping bytes — is byte-identical to the
// equivalent `topomap <kind>` invocation, regardless of how many requests
// are in flight.  Two ingredients make that hold:
//
//   * Each request draws from its own Rng(seed) in exactly the CLI's order
//     (task-graph generation first, then mapping), so sharing a process
//     shares no RNG state.
//   * handle() wraps execution in a support::InlineScope — mapping kernels
//     run their parallel_for regions inline on the serving thread.  The
//     repo-wide thread-count-invariance contract (every parallel kernel is
//     byte-identical at any thread count, including 1) turns request-level
//     concurrency into the only concurrency, so workers never contend for
//     the deterministic pool's single job slot.
//
// Request-lifecycle telemetry: every request carries a correlation id —
// minted by the server when the request is accepted off the wire, or by
// handle() itself for direct (in-process) calls — and its stage timings
// (queue-wait → cache-pool acquire → kernel → serialize) feed per-kind
// obs::Histograms ("svc/<kind>/<stage>_us"), the always-on
// svc::FlightRecorder ring, and the optional JSONL EventLog.  Timing only
// *observes*: stage clocks never change a mapping result, so served bytes
// are byte-identical with telemetry on or off.  The obs::Histogram feeds
// are OBS-macro-gated (zero overhead in TOPOMAP_OBS=OFF builds); the
// flight recorder and per-kind atomic counters are always on and
// allocation-free per event.
//
// The expensive shareable state — topology, fault overlay, distance plane —
// comes from the CachePool; the per-request core::CacheHandle is pre-seeded
// with the pooled plane so composed strategies reuse one fill per machine.
//
// Error mapping: anything a request throws becomes a structured error
// response carrying the exit-code taxonomy category (svc/protocol.hpp);
// conditions the CLI reports as "usage" (exit 1) — e.g. a non-square
// mapping request — are raised as svc::usage_error so the client exits 1
// just like the CLI would.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "svc/cache_pool.hpp"
#include "svc/event_log.hpp"
#include "svc/flight.hpp"
#include "svc/protocol.hpp"

namespace topomap::svc {

struct ServiceOptions {
  /// Distinct machines the CachePool keeps warm.
  std::size_t cache_capacity = 8;
  /// When non-empty, every request writes an obs::Report artifact to
  /// <report_dir>/req-<sanitized id>.json (per-request --stats analogue).
  std::string report_dir;
  /// Flight-recorder ring capacity (rounded up to a power of two).
  std::size_t flight_capacity = 256;
  /// When non-empty, append one JSONL line per completed request here.
  std::string event_log_path;
  /// Event-log rotation threshold (FILE -> FILE.1 when exceeded).
  std::size_t event_log_max_bytes = 1u << 20;
};

/// Per-request lifecycle context the server threads through the queue:
/// the correlation id minted at accept plus the enqueue/dequeue
/// timestamps (obs::now_ns domain) that define the queue-wait stage.
/// Direct Service::handle(req) calls use a default context — handle mints
/// the correlation id and reports no queue wait.
struct RequestContext {
  std::string corr;
  std::uint64_t enqueue_ns = 0;
  std::uint64_t dequeue_ns = 0;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  /// Execute one request.  Never throws: failures come back as structured
  /// error responses with the taxonomy category.
  Response handle(const Request& req);
  Response handle(const Request& req, const RequestContext& ctx);

  /// A service-unique correlation id ("r-<n>").  The server mints one per
  /// request at accept; handle() mints its own when the context has none.
  std::string mint_correlation_id();

  /// The always-on lifecycle event ring (the server records its
  /// accept/enqueue/dequeue/serialize events here too).
  FlightRecorder& flight() { return flight_; }
  const FlightRecorder& flight() const { return flight_; }

  /// Install the live queue-depth probe for metrics snapshots (the server
  /// owns the queue; 0 when unset, e.g. direct in-process use).
  void set_queue_depth_probe(std::function<std::size_t()> probe);

  /// The topomap.svc.metrics v1 snapshot document (also the result of a
  /// `metrics` request).
  json::Value metrics_snapshot() const;

  CachePoolStats cache_stats() const { return pool_.stats(); }

  /// Event-log rotations so far (0 when no --event-log).
  std::size_t event_log_rotations() const { return event_log_.rotations(); }

 private:
  /// Stage timings for one in-flight request, threaded through the run_*
  /// paths so the pool-acquire stage can be attributed exactly.
  struct Lifecycle {
    const char* kind = "";
    std::string corr;
    std::uint64_t queue_wait_ns = 0;
    std::uint64_t acquire_ns = 0;
  };

  json::Value dispatch(const Request& req, Lifecycle& lc);
  json::Value run_map(const Request& req, Lifecycle& lc);
  json::Value run_explain(const Request& req, Lifecycle& lc);
  json::Value run_evacuate(const Request& req, Lifecycle& lc);
  json::Value run_optimal(const Request& req, Lifecycle& lc);
  json::Value run_status() const;
  json::Value run_flight() const;
  MachineEntryPtr acquire_timed(const std::string& topology,
                                const topo::FaultSpec& faults,
                                Lifecycle& lc);
  void finish_request(const Request& req, const Lifecycle& lc, bool ok,
                      std::uint64_t t_start_ns, std::uint64_t total_ns);
  void write_report(const Request& req, bool ok) const;

  ServiceOptions options_;
  CachePool pool_;
  FlightRecorder flight_;
  EventLog event_log_;
  std::function<std::size_t()> queue_depth_probe_;
  std::atomic<std::uint64_t> next_corr_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> served_by_kind_[kNumRequestKinds] = {};
  std::atomic<std::uint64_t> failed_by_kind_[kNumRequestKinds] = {};
};

}  // namespace topomap::svc
