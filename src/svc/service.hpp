// svc::Service — topomapd's request executor.
//
// One Service instance serves every connection: it owns the shared
// svc::CachePool and turns protocol Requests into Responses by running the
// same code paths the one-shot CLI runs (core::make_strategy_with_handle,
// core::map_on_alive, core::attribute_link_loads, rts::evacuate,
// core::find_optimal_mapping).  Determinism contract: a request's result —
// including the embedded mapping bytes — is byte-identical to the
// equivalent `topomap <kind>` invocation, regardless of how many requests
// are in flight.  Two ingredients make that hold:
//
//   * Each request draws from its own Rng(seed) in exactly the CLI's order
//     (task-graph generation first, then mapping), so sharing a process
//     shares no RNG state.
//   * handle() wraps execution in a support::InlineScope — mapping kernels
//     run their parallel_for regions inline on the serving thread.  The
//     repo-wide thread-count-invariance contract (every parallel kernel is
//     byte-identical at any thread count, including 1) turns request-level
//     concurrency into the only concurrency, so workers never contend for
//     the deterministic pool's single job slot.
//
// The expensive shareable state — topology, fault overlay, distance plane —
// comes from the CachePool; the per-request core::CacheHandle is pre-seeded
// with the pooled plane so composed strategies reuse one fill per machine.
//
// Error mapping: anything a request throws becomes a structured error
// response carrying the exit-code taxonomy category (svc/protocol.hpp);
// conditions the CLI reports as "usage" (exit 1) — e.g. a non-square
// mapping request — are raised as svc::usage_error so the client exits 1
// just like the CLI would.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "svc/cache_pool.hpp"
#include "svc/protocol.hpp"

namespace topomap::svc {

struct ServiceOptions {
  /// Distinct machines the CachePool keeps warm.
  std::size_t cache_capacity = 8;
  /// When non-empty, every request writes an obs::Report artifact to
  /// <report_dir>/req-<sanitized id>.json (per-request --stats analogue).
  std::string report_dir;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  /// Execute one request.  Never throws: failures come back as structured
  /// error responses with the taxonomy category.
  Response handle(const Request& req);

  CachePoolStats cache_stats() const { return pool_.stats(); }

 private:
  json::Value run_map(const Request& req);
  json::Value run_explain(const Request& req);
  json::Value run_evacuate(const Request& req);
  json::Value run_optimal(const Request& req);
  json::Value run_status() const;
  void write_report(const Request& req, bool ok) const;

  ServiceOptions options_;
  CachePool pool_;
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> failed_{0};
};

}  // namespace topomap::svc
