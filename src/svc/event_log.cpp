#include "svc/event_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <utility>

#include "support/error.hpp"

namespace topomap::svc {

namespace {

int open_trunc(const std::string& path) {
  return ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
}

bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

EventLog::~EventLog() {
  if (fd_ >= 0) ::close(fd_);
}

void EventLog::open(std::string path, std::size_t max_bytes) {
  TOPOMAP_REQUIRE(max_bytes > 0, "event log: max_bytes must be positive");
  const int fd = open_trunc(path);
  if (fd < 0)
    throw io_error("event log: cannot open '" + path +
                   "': " + std::strerror(errno));
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) ::close(fd_);
  path_ = std::move(path);
  max_bytes_ = max_bytes;
  size_ = 0;
  rotations_ = 0;
  fd_ = fd;
  active_ = true;
}

void EventLog::rotate_locked() {
  ::close(fd_);
  fd_ = -1;
  const std::string old = path_ + ".1";
  // rename(2) replaces an existing FILE.1 atomically; a failure (exotic
  // filesystem) just means we truncate in place and lose the old tail.
  if (std::rename(path_.c_str(), old.c_str()) != 0)
    std::cerr << "topomapd: warning: event-log rotation rename failed: "
              << std::strerror(errno) << "\n";
  fd_ = open_trunc(path_);
  size_ = 0;
  ++rotations_;
}

void EventLog::append(std::string_view line) {
  if (!active_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return;
  if (size_ > 0 && size_ + line.size() + 1 > max_bytes_) rotate_locked();
  if (fd_ < 0) {  // reopen after rotation failed
    std::cerr << "topomapd: warning: event log disabled (reopen failed)\n";
    active_ = false;
    return;
  }
  const bool ok =
      write_all(fd_, line.data(), line.size()) && write_all(fd_, "\n", 1);
  if (!ok) {
    std::cerr << "topomapd: warning: event log disabled (write failed: "
              << std::strerror(errno) << ")\n";
    ::close(fd_);
    fd_ = -1;
    active_ = false;
    return;
  }
  size_ += line.size() + 1;
}

std::size_t EventLog::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

}  // namespace topomap::svc
