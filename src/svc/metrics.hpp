// The topomap.svc.metrics snapshot schema: strict validation and the
// Prometheus text exposition.
//
// A `metrics` request returns one snapshot document as the response
// result:
//
//   {
//     "schema": "topomap.svc.metrics", "schema_version": 1,
//     "requests": {"served": N, "failed": M,
//                  "by_kind": {"map": {"served":..,"failed":..}, ...}},
//     "queue_depth": D,
//     "pool": {"hits","misses","evictions","entries","capacity"},
//     "bucket_scheme": {"kind":"log2-linear","sub_buckets":8,
//                       "buckets":513},
//     "histograms": {"svc/map/kernel_us": {count,sum,min,max,mean,
//                     p50,p90,p99, buckets:[[lo,hi,count],...]}, ...}
//   }
//
// Determinism split: requests/by_kind counts, the pool counters, and the
// bucket_scheme are *deterministic* for a given serial request sequence
// (CI byte-compares them across runs); histogram contents and queue_depth
// are timing-derived and informational.  The bucket *boundaries* inside
// each histogram are deterministic by construction (obs/histogram.hpp) —
// which bucket a latency lands in is not.
//
// validate_* are strict in the svc/protocol.hpp tradition: wrong schema,
// missing fields, unknown keys, and mistyped values throw
// topomap::precondition_error naming the field.  `topomap client
// --kind=metrics --prom` validates before exposing, so a daemon/client
// schema skew fails loudly instead of exporting garbage.
#pragma once

#include <string>

#include "support/json.hpp"

namespace topomap::svc {

namespace json = ::topomap::support::json;

inline constexpr const char* kMetricsSchemaName = "topomap.svc.metrics";
inline constexpr int kMetricsSchemaVersion = 1;

inline constexpr const char* kFlightSchemaName = "topomap.svc.flight";
inline constexpr int kFlightSchemaVersion = 1;

/// Strict validation of one metrics snapshot document; throws
/// precondition_error naming the offending field.
void validate_metrics_snapshot(const json::Value& doc);

/// Strict validation of one flight-recorder document.
void validate_flight_snapshot(const json::Value& doc);

/// Prometheus text-format exposition of a snapshot (validated first).
/// Counter/gauge names are prefixed topomap_; histogram names are
/// sanitized ("svc/map/kernel_us" -> topomap_svc_map_kernel_us) and
/// exposed with cumulative le-buckets plus _sum/_count.
std::string metrics_to_prometheus(const json::Value& doc);

}  // namespace topomap::svc
