#include "svc/protocol.hpp"

#include <cmath>
#include <set>
#include <sstream>

#include "support/error.hpp"

namespace topomap::svc {

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kMap: return "map";
    case RequestKind::kExplain: return "explain";
    case RequestKind::kEvacuate: return "evacuate";
    case RequestKind::kOptimal: return "optimal";
    case RequestKind::kStatus: return "status";
    case RequestKind::kMetrics: return "metrics";
    case RequestKind::kFlight: return "flight";
  }
  TOPOMAP_UNREACHABLE("unhandled RequestKind");
}

RequestKind parse_request_kind(const std::string& s) {
  if (s == "map") return RequestKind::kMap;
  if (s == "explain") return RequestKind::kExplain;
  if (s == "evacuate") return RequestKind::kEvacuate;
  if (s == "optimal") return RequestKind::kOptimal;
  if (s == "status") return RequestKind::kStatus;
  if (s == "metrics") return RequestKind::kMetrics;
  if (s == "flight") return RequestKind::kFlight;
  throw precondition_error(
      "svc request: unknown kind '" + s +
      "' (want map | explain | evacuate | optimal | status | metrics | "
      "flight)");
}

topo::FaultSpec Request::fault_spec() const {
  return topo::parse_fault_spec(fail_link, fail_node, degrade_link,
                                random_link_faults, random_node_faults,
                                random_degrades, fault_seed, restore_node,
                                restore_link);
}

namespace {

/// Field accessors that name the offending key on a type mismatch.
const json::Value& require_member(const json::Value& obj,
                                  const std::string& key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr)
    throw precondition_error("svc request: missing field '" + key + "'");
  return *v;
}

std::string get_string(const json::Value& v, const std::string& key) {
  if (!v.is_string())
    throw precondition_error("svc request: field '" + key +
                             "' must be a string");
  return v.as_string();
}

double get_number(const json::Value& v, const std::string& key) {
  if (!v.is_number())
    throw precondition_error("svc request: field '" + key +
                             "' must be a number");
  return v.as_number();
}

std::int64_t get_integer(const json::Value& v, const std::string& key) {
  const double d = get_number(v, key);
  if (std::floor(d) != d ||
      std::abs(d) > 9007199254740992.0 /* 2^53: exact double integers */)
    throw precondition_error("svc request: field '" + key +
                             "' must be an integer");
  return static_cast<std::int64_t>(d);
}

std::uint64_t get_unsigned(const json::Value& v, const std::string& key) {
  const std::int64_t i = get_integer(v, key);
  if (i < 0)
    throw precondition_error("svc request: field '" + key +
                             "' must be non-negative");
  return static_cast<std::uint64_t>(i);
}

bool get_bool(const json::Value& v, const std::string& key) {
  if (!v.is_bool())
    throw precondition_error("svc request: field '" + key +
                             "' must be a boolean");
  return v.as_bool();
}

void check_schema(const json::Value& doc, const char* expected_name) {
  if (!doc.is_object())
    throw precondition_error("svc: document is not a JSON object");
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != expected_name)
    throw precondition_error(std::string("svc: expected schema '") +
                             expected_name + "'");
  const json::Value* version = doc.find("schema_version");
  if (version == nullptr || !version->is_number() ||
      version->as_number() != kSchemaVersion)
    throw precondition_error("svc: unsupported schema_version (want " +
                             std::to_string(kSchemaVersion) + ")");
}

}  // namespace

json::Value Request::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("schema", kRequestSchemaName);
  doc.set("schema_version", kSchemaVersion);
  doc.set("id", id);
  doc.set("kind", to_string(kind));
  json::Value params = json::Value::object();
  params.set("tasks", tasks);
  params.set("topology", topology);
  params.set("strategy", strategy);
  params.set("seed", seed);
  params.set("baseline", baseline);
  params.set("baseline_blind", baseline_blind);
  params.set("top_k", top_k);
  params.set("refine_passes", refine_passes);
  params.set("load_weight", load_weight);
  params.set("budget", budget);
  params.set("compare", compare);
  params.set("no_symmetry", no_symmetry);
  params.set("fail_link", fail_link);
  params.set("fail_node", fail_node);
  params.set("degrade_link", degrade_link);
  params.set("restore_node", restore_node);
  params.set("restore_link", restore_link);
  params.set("random_link_faults", random_link_faults);
  params.set("random_node_faults", random_node_faults);
  params.set("random_degrades", random_degrades);
  params.set("fault_seed", fault_seed);
  doc.set("params", std::move(params));
  return doc;
}

Request Request::from_json(const json::Value& doc) {
  check_schema(doc, kRequestSchemaName);
  Request req;
  req.id = get_string(require_member(doc, "id"), "id");
  if (req.id.empty())
    throw precondition_error("svc request: 'id' must be non-empty");
  req.kind =
      parse_request_kind(get_string(require_member(doc, "kind"), "kind"));
  const json::Value* params = doc.find("params");
  if (params == nullptr) return req;  // all defaults
  if (!params->is_object())
    throw precondition_error("svc request: 'params' must be an object");
  for (const auto& [key, value] : params->members()) {
    if (key == "tasks") req.tasks = get_string(value, key);
    else if (key == "topology") req.topology = get_string(value, key);
    else if (key == "strategy") req.strategy = get_string(value, key);
    else if (key == "seed") req.seed = get_unsigned(value, key);
    else if (key == "baseline") req.baseline = get_string(value, key);
    else if (key == "baseline_blind")
      req.baseline_blind = get_bool(value, key);
    else if (key == "top_k")
      req.top_k = static_cast<int>(get_integer(value, key));
    else if (key == "refine_passes")
      req.refine_passes = static_cast<int>(get_integer(value, key));
    else if (key == "load_weight") req.load_weight = get_number(value, key);
    else if (key == "budget") req.budget = get_integer(value, key);
    else if (key == "compare") req.compare = get_string(value, key);
    else if (key == "no_symmetry") req.no_symmetry = get_bool(value, key);
    else if (key == "fail_link") req.fail_link = get_string(value, key);
    else if (key == "fail_node") req.fail_node = get_string(value, key);
    else if (key == "degrade_link")
      req.degrade_link = get_string(value, key);
    else if (key == "restore_node")
      req.restore_node = get_string(value, key);
    else if (key == "restore_link")
      req.restore_link = get_string(value, key);
    else if (key == "random_link_faults")
      req.random_link_faults = get_integer(value, key);
    else if (key == "random_node_faults")
      req.random_node_faults = get_integer(value, key);
    else if (key == "random_degrades")
      req.random_degrades = get_integer(value, key);
    else if (key == "fault_seed") req.fault_seed = get_unsigned(value, key);
    else
      throw precondition_error("svc request: unknown parameter '" + key +
                               "'");
  }
  return req;
}

std::string machine_key(const std::string& topology_spec,
                        const topo::FaultSpec& faults) {
  std::ostringstream os;
  os << topology_spec;
  if (faults.empty()) return os.str();
  os << "|L:";
  for (const auto& [a, b] : faults.fail_links) os << a << '-' << b << ',';
  os << "|N:";
  for (int p : faults.fail_nodes) os << p << ',';
  os << "|D:";
  for (const topo::LinkDegradeSpec& d : faults.degrades)
    os << d.a << '-' << d.b << '@' << json::format_number(d.health) << ',';
  os << "|RN:";
  for (const topo::NodeRestoreSpec& r : faults.restore_nodes)
    os << r.p << '@' << r.epoch << ',';
  os << "|RL:";
  for (const topo::LinkRestoreSpec& r : faults.restore_links)
    os << r.a << '-' << r.b << '@' << r.epoch << ',';
  os << "|r:" << faults.random_link_faults << ':'
     << faults.random_node_faults << ':' << faults.random_degrades;
  // The seed only matters when random draws happen — keying on it
  // otherwise would split identical machines into separate pool entries.
  if (faults.random_link_faults > 0 || faults.random_node_faults > 0 ||
      faults.random_degrades > 0)
    os << "|s:" << faults.seed;
  return os.str();
}

int exit_code_for(const std::string& category) {
  if (category == "precondition") return 2;
  if (category == "invariant") return 3;
  if (category == "io") return 4;
  return 1;  // "usage" and anything unclassified
}

json::Value Response::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("schema", kResponseSchemaName);
  doc.set("schema_version", kSchemaVersion);
  doc.set("id", id);
  doc.set("status", ok ? "ok" : "error");
  if (ok) {
    doc.set("result", result);
  } else {
    json::Value e = json::Value::object();
    e.set("category", error.category);
    e.set("message", error.message);
    e.set("exit_code", exit_code_for(error.category));
    doc.set("error", std::move(e));
  }
  return doc;
}

Response Response::from_json(const json::Value& doc) {
  check_schema(doc, kResponseSchemaName);
  Response resp;
  resp.id = get_string(require_member(doc, "id"), "id");
  const std::string status =
      get_string(require_member(doc, "status"), "status");
  if (status == "ok") {
    resp.ok = true;
    const json::Value& result = require_member(doc, "result");
    if (!result.is_object())
      throw precondition_error("svc response: 'result' must be an object");
    resp.result = result;
  } else if (status == "error") {
    resp.ok = false;
    const json::Value& e = require_member(doc, "error");
    if (!e.is_object())
      throw precondition_error("svc response: 'error' must be an object");
    resp.error.category = get_string(require_member(e, "category"),
                                     "error.category");
    resp.error.message =
        get_string(require_member(e, "message"), "error.message");
  } else {
    throw precondition_error("svc response: status must be 'ok' or 'error'");
  }
  return resp;
}

Response make_error_response(const std::string& id,
                             std::exception_ptr error) {
  Response resp;
  resp.id = id;
  resp.ok = false;
  try {
    std::rethrow_exception(error);
  } catch (const usage_error& e) {
    resp.error = {"usage", e.what()};
  } catch (const precondition_error& e) {
    resp.error = {"precondition", e.what()};
  } catch (const invariant_error& e) {
    resp.error = {"invariant", e.what()};
  } catch (const io_error& e) {
    resp.error = {"io", e.what()};
  } catch (const std::exception& e) {
    resp.error = {"usage", e.what()};
  }
  return resp;
}

}  // namespace topomap::svc
