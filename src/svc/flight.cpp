#include "svc/flight.hpp"

#include <algorithm>
#include <cstring>
#include <ostream>

namespace topomap::svc {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

template <std::size_t N>
void copy_padded(char (&dst)[N], std::string_view src) {
  const std::size_t n = std::min(src.size(), N - 1);
  std::memcpy(dst, src.data(), n);
  std::memset(dst + n, 0, N - n);
}

template <std::size_t N>
std::string_view field(const char (&src)[N]) {
  return {src, ::strnlen(src, N)};
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(round_up_pow2(capacity)), mask_(slots_.size() - 1) {}

void FlightRecorder::record(std::string_view corr, std::string_view kind,
                            std::string_view stage, std::uint64_t t_ns,
                            std::uint64_t dur_ns) {
  const std::uint64_t seq = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & mask_];
  // Seqlock write: odd marks the slot in flux, even = 2*seq + 2 marks it
  // stable *for this sequence number* — a reader can tell an old
  // generation from a current one by the version value alone.
  slot.version.store(2 * seq + 1, std::memory_order_release);
  slot.ev.seq = seq;
  slot.ev.t_ns = t_ns;
  slot.ev.dur_ns = dur_ns;
  copy_padded(slot.ev.corr, corr);
  copy_padded(slot.ev.kind, kind);
  copy_padded(slot.ev.stage, stage);
  slot.version.store(2 * seq + 2, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  const std::uint64_t end = cursor_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t begin = end > cap ? end - cap : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t i = begin; i < end; ++i) {
    const Slot& slot = slots_[i & mask_];
    if (slot.version.load(std::memory_order_acquire) != 2 * i + 2)
      continue;  // being written, or already lapped by a newer event
    FlightEvent ev = slot.ev;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.version.load(std::memory_order_relaxed) != 2 * i + 2)
      continue;  // overwritten mid-copy: drop the torn read
    out.push_back(ev);
  }
  return out;
}

json::Value FlightRecorder::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("schema", "topomap.svc.flight");
  doc.set("schema_version", 1);
  doc.set("capacity", capacity());
  doc.set("recorded", total_recorded());
  json::Value events = json::Value::array();
  for (const FlightEvent& ev : snapshot()) {
    json::Value e = json::Value::object();
    e.set("seq", ev.seq);
    e.set("t_ns", ev.t_ns);
    e.set("dur_ns", ev.dur_ns);
    e.set("corr", std::string(field(ev.corr)));
    e.set("kind", std::string(field(ev.kind)));
    e.set("stage", std::string(field(ev.stage)));
    events.push_back(std::move(e));
  }
  doc.set("events", std::move(events));
  return doc;
}

void FlightRecorder::dump_text(std::ostream& os) const {
  const std::vector<FlightEvent> events = snapshot();
  os << "flight recorder: " << events.size() << " of " << total_recorded()
     << " events (capacity " << capacity() << ")\n";
  for (const FlightEvent& ev : events) {
    os << "  #" << ev.seq << " t=" << ev.t_ns << "ns " << field(ev.corr)
       << " " << field(ev.kind) << "/" << field(ev.stage);
    if (ev.dur_ns > 0) os << " dur=" << ev.dur_ns << "ns";
    os << "\n";
  }
  os.flush();
}

}  // namespace topomap::svc
