// svc::CachePool — the daemon's shared machine/distance-plane pool.
//
// Every request names a machine (topology spec + fault flag family).
// Building that machine view is the expensive, perfectly shareable part of
// serving: the topology object, the FaultOverlay with its fault
// application and random draws, and above all the O(p^2) DistanceCache
// plane fill.  The pool shares all three across concurrent requests, keyed
// by svc::machine_key — the canonical (topology, parsed-fault-spec)
// identity that is the server-side analogue of core::CacheHandle's
// identity+fault-version key (a request with one more fault has a
// different key, so stale planes can never serve a changed machine).
//
// Concurrency: one build per key, ever.  The first acquirer of a key
// builds under a per-entry latch while later acquirers block on it and
// then share the result — so a burst of requests on the same machine costs
// exactly one plane fill ("topology-affine batching" at the cache layer).
// A failed build propagates its exception to every waiter and leaves no
// entry behind, so the next acquire retries.
//
// Bounding: LRU with a fixed entry capacity.  Eviction only drops the
// pool's reference — entries are shared_ptr-held, so in-flight requests
// keep their machine alive.  Hits/misses/evictions are counted both in
// always-on pool stats (served via the `status` request and the load
// bench) and as obs:: counters (svc/cache_hits, svc/cache_misses,
// svc/cache_evictions) in instrumented builds.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "topo/distance_cache.hpp"
#include "topo/fault_overlay.hpp"
#include "topo/fault_spec.hpp"
#include "topo/topology.hpp"

namespace topomap::svc {

/// One pooled machine view: the base topology, the optional fault overlay,
/// and the distance plane over whichever of the two is the machine.
/// `plane` is null when the machine exceeds the dense-plane cap (huge
/// hierarchical targets) — kernels then build their own scoped caches.
struct MachineEntry {
  std::string key;
  topo::TopologyPtr base;
  std::shared_ptr<topo::FaultOverlay> overlay;  // null when no faults
  std::shared_ptr<const topo::DistanceCache> plane;

  const topo::Topology& machine() const { return overlay ? *overlay : *base; }
};

using MachineEntryPtr = std::shared_ptr<const MachineEntry>;

struct CachePoolStats {
  std::uint64_t hits = 0;      ///< acquire found the key (incl. coalesced
                               ///< waits on an in-flight build)
  std::uint64_t misses = 0;    ///< acquire had to build
  std::uint64_t evictions = 0; ///< LRU drops
  std::uint64_t entries = 0;   ///< currently pooled
  std::uint64_t capacity = 0;
};

class CachePool {
 public:
  /// `capacity` >= 1: distinct machines kept warm.
  explicit CachePool(std::size_t capacity = 8);

  /// The pooled machine for (topology_spec, faults), building it on first
  /// use.  Deterministic: the entry an acquire returns is byte-identical
  /// to a private build of the same specs (build_fault_overlay draws from
  /// its own seeded Rng).  Throws what the builders throw — unknown
  /// topology specs, fault rejections, timed restores — without caching
  /// the failure.
  MachineEntryPtr acquire(const std::string& topology_spec,
                          const topo::FaultSpec& faults);

  CachePoolStats stats() const;

 private:
  struct Slot {
    MachineEntryPtr entry;              // set once the build finished
    bool building = true;
    std::exception_ptr error;           // set when the build failed
    std::condition_variable ready;
  };
  using SlotPtr = std::shared_ptr<Slot>;

  void touch_lru(const std::string& key);  // requires mu_ held

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::map<std::string, SlotPtr> slots_;
  std::list<std::string> lru_;  // front = most recently used
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace topomap::svc
