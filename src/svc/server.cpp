#include "svc/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <iostream>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "support/error.hpp"
#include "svc/protocol.hpp"

namespace topomap::svc {

namespace {

struct Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd;
  std::mutex write_mu;  // responses may race from several workers
};

using ConnectionPtr = std::shared_ptr<Connection>;

void close_if_open(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    throw io_error("topomapd: socket path '" + path +
                   "' is empty or too long for a unix socket");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw io_error(std::string("topomapd: socket() failed: ") +
                   std::strerror(errno));
  ::unlink(path.c_str());  // replace a stale socket file from a dead daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    throw io_error("topomapd: cannot listen on '" + path +
                   "': " + std::strerror(err));
  }
  return fd;
}

int listen_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw io_error(std::string("topomapd: socket() failed: ") +
                   std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    throw io_error("topomapd: cannot listen on 127.0.0.1:" +
                   std::to_string(port) + ": " + std::strerror(err));
  }
  return fd;
}

}  // namespace

struct Server::Impl {
  ServerOptions options;
  Service service;

  int unix_fd = -1;
  int tcp_fd = -1;
  int wake_rd = -1;
  int wake_wr = -1;
  bool started = false;
  bool joined = false;

  std::thread accept_thread;
  std::vector<std::thread> worker_threads;

  // Connection registry: readers are detached; shutdown EOFs every live
  // connection and waits for the active count to reach zero.
  std::mutex conn_mu;
  std::condition_variable readers_done;
  int active_readers = 0;
  std::vector<std::weak_ptr<Connection>> connections;

  struct Job {
    ConnectionPtr conn;
    Request req;
    RequestContext ctx;    // correlation id + queue-wait timestamps
    std::string affinity;  // machine key; "" when it could not be computed
  };
  std::mutex queue_mu;
  std::condition_variable queue_push;  // space freed
  std::condition_variable queue_pop;   // work available / draining
  std::deque<Job> queue;
  bool draining = false;

  explicit Impl(ServerOptions opts)
      : options(std::move(opts)), service(options.service) {}

  void send_payload(const ConnectionPtr& conn, const std::string& payload) {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    try {
      write_frame(conn->fd, payload, options.max_payload);
    } catch (const std::exception&) {
      // Peer went away mid-response; its reader will see EOF and retire.
    }
  }

  void send_response(const ConnectionPtr& conn, const Response& resp) {
    send_payload(conn, resp.to_json().dump());
  }

  void enqueue(ConnectionPtr conn, Request req, RequestContext ctx) {
    std::string affinity;
    try {
      affinity = machine_key(req.topology, req.fault_spec());
    } catch (const std::exception&) {
      // Malformed fault flags: let the worker raise the structured error.
    }
    std::unique_lock<std::mutex> lock(queue_mu);
    // Backpressure: a full queue blocks this connection's reader, pushing
    // the stall back into the socket instead of buffering unboundedly.
    queue_push.wait(lock, [&] {
      return queue.size() < options.queue_capacity || draining;
    });
    if (draining) return;  // shutdown raced the read; connection is closing
    ctx.enqueue_ns = obs::now_ns();
    service.flight().record(ctx.corr, to_string(req.kind), "enqueue",
                            ctx.enqueue_ns, 0);
    queue.push_back(Job{std::move(conn), std::move(req), std::move(ctx),
                        std::move(affinity)});
    OBS_VALUE("svc/queue_depth", static_cast<double>(queue.size()));
    queue_pop.notify_one();
  }

  void reader_main(ConnectionPtr conn) {
    std::string payload;
    for (;;) {
      try {
        if (!read_frame(conn->fd, payload, options.max_payload)) break;
      } catch (const precondition_error&) {
        // Framing desync (bad magic / oversized declaration): answer, then
        // drop the connection — the byte stream can't be trusted anymore.
        send_response(conn,
                      make_error_response("", std::current_exception()));
        // The receive buffer may still hold unread garbage; closing now
        // would turn the close into an RST that can discard the queued
        // error response before the client reads it.  FIN our side and
        // drain (bounded) until the peer hangs up.
        ::shutdown(conn->fd, SHUT_WR);
        char scratch[1024];
        std::size_t drained = 0;
        while (drained < (std::size_t{1} << 20)) {
          const ssize_t n = ::recv(conn->fd, scratch, sizeof(scratch), 0);
          if (n <= 0) break;
          drained += static_cast<std::size_t>(n);
        }
        break;
      } catch (const std::exception&) {
        break;  // mid-frame EOF or hard read error
      }
      json::Value doc;
      try {
        doc = json::Value::parse(payload);
      } catch (...) {
        send_response(conn,
                      make_error_response("", std::current_exception()));
        continue;  // framing is still in sync; keep serving
      }
      std::string id;
      if (doc.is_object())
        if (const json::Value* v = doc.find("id"); v != nullptr &&
            v->is_string())
          id = v->as_string();
      Request req;
      try {
        req = Request::from_json(doc);
      } catch (...) {
        send_response(conn,
                      make_error_response(id, std::current_exception()));
        continue;
      }
      // A request exists the moment it parses: mint its correlation id
      // here so the accept→done lifecycle is attributable end to end.
      RequestContext ctx;
      ctx.corr = service.mint_correlation_id();
      service.flight().record(ctx.corr, to_string(req.kind), "accept",
                              obs::now_ns(), 0);
      enqueue(conn, std::move(req), std::move(ctx));
    }
    std::lock_guard<std::mutex> lock(conn_mu);
    --active_readers;
    readers_done.notify_all();
  }

  void worker_main() {
    std::string last_key;
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        queue_pop.wait(lock, [&] { return !queue.empty() || draining; });
        if (queue.empty()) return;  // draining and nothing left
        // Topology-affine pick: prefer a request on the machine this
        // worker just served so its warm pool entry drains back-to-back.
        auto it = queue.begin();
        if (!last_key.empty()) {
          for (auto j = queue.begin(); j != queue.end(); ++j) {
            if (j->affinity == last_key) {
              it = j;
              break;
            }
          }
        }
        job = std::move(*it);
        queue.erase(it);
        queue_push.notify_one();
      }
      last_key = job.affinity;
      job.ctx.dequeue_ns = obs::now_ns();
      const Response resp = service.handle(job.req, job.ctx);
      // Serialize is its own lifecycle stage: the response is rendered
      // here, outside the connection write lock, so its cost is separable
      // from both the kernel and the socket write.
      const std::uint64_t t0 = obs::now_ns();
      const std::string payload = resp.to_json().dump();
      const std::uint64_t dur = obs::now_ns() - t0;
      service.flight().record(job.ctx.corr, to_string(job.req.kind),
                              "serialize", t0, dur);
      OBS_HISTOGRAM(std::string("svc/") + to_string(job.req.kind) +
                        "/serialize_us",
                    static_cast<double>(dur / 1000));
      send_payload(job.conn, payload);
    }
  }

  void accept_main() {
    for (;;) {
      pollfd fds[3];
      nfds_t n = 0;
      fds[n++] = {wake_rd, POLLIN, 0};
      if (unix_fd >= 0) fds[n++] = {unix_fd, POLLIN, 0};
      if (tcp_fd >= 0) fds[n++] = {tcp_fd, POLLIN, 0};
      if (::poll(fds, n, -1) < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (fds[0].revents != 0) {
        // The self-pipe carries one byte per wake: 'x' = stop() (shutdown),
        // 'u' = request_flight_dump() (SIGUSR1).  Drain whatever is
        // pending; a read failure means the pipe is gone, so shut down.
        char bytes[16];
        const ssize_t nread = ::read(wake_rd, bytes, sizeof(bytes));
        bool stop_requested = nread <= 0;
        bool dump_requested = false;
        for (ssize_t i = 0; i < nread; ++i) {
          if (bytes[i] == 'u') dump_requested = true;
          else stop_requested = true;
        }
        if (dump_requested) service.flight().dump_text(std::cerr);
        if (stop_requested) break;
      }
      for (nfds_t i = 1; i < n; ++i) {
        if (fds[i].revents == 0) continue;
        const int client = ::accept(fds[i].fd, nullptr, nullptr);
        if (client < 0) continue;
        auto conn = std::make_shared<Connection>(client);
        std::lock_guard<std::mutex> lock(conn_mu);
        connections.erase(
            std::remove_if(connections.begin(), connections.end(),
                           [](const std::weak_ptr<Connection>& w) {
                             return w.expired();
                           }),
            connections.end());
        connections.push_back(conn);
        ++active_readers;
        std::thread([this, conn = std::move(conn)]() mutable {
          reader_main(std::move(conn));
        }).detach();
      }
    }
    // Clean-shutdown drain: no new connections, EOF the live ones, wait
    // for their readers, finish every queued request, retire the workers.
    close_if_open(unix_fd);
    close_if_open(tcp_fd);
    if (!options.socket_path.empty()) ::unlink(options.socket_path.c_str());
    {
      std::unique_lock<std::mutex> lock(conn_mu);
      for (const std::weak_ptr<Connection>& w : connections)
        if (const ConnectionPtr c = w.lock()) ::shutdown(c->fd, SHUT_RD);
      readers_done.wait(lock, [&] { return active_readers == 0; });
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu);
      draining = true;
      queue_pop.notify_all();
      queue_push.notify_all();
    }
    for (std::thread& w : worker_threads) w.join();
  }
};

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() {
  if (impl_->started && !impl_->joined) {
    stop();
    join();
  }
  close_if_open(impl_->wake_rd);
  close_if_open(impl_->wake_wr);
}

void Server::start() {
  TOPOMAP_REQUIRE(!impl_->started, "topomapd server already started");
  int pipefd[2];
  if (::pipe(pipefd) < 0)
    throw io_error(std::string("topomapd: pipe() failed: ") +
                   std::strerror(errno));
  impl_->wake_rd = pipefd[0];
  impl_->wake_wr = pipefd[1];
  impl_->service.set_queue_depth_probe([impl = impl_.get()] {
    std::lock_guard<std::mutex> lock(impl->queue_mu);
    return impl->queue.size();
  });
  impl_->unix_fd = listen_unix(impl_->options.socket_path);
  if (impl_->options.tcp_port > 0)
    impl_->tcp_fd = listen_tcp(impl_->options.tcp_port);
  const std::size_t workers = std::max<std::size_t>(impl_->options.workers, 1);
  impl_->worker_threads.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    impl_->worker_threads.emplace_back([this] { impl_->worker_main(); });
  impl_->accept_thread = std::thread([this] { impl_->accept_main(); });
  impl_->started = true;
}

void Server::stop() {
  // Async-signal-safe: one write on the self-pipe, nothing else.
  if (impl_->wake_wr >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t r = ::write(impl_->wake_wr, &byte, 1);
  }
}

void Server::request_flight_dump() {
  // Async-signal-safe, like stop(): one self-pipe write.
  if (impl_->wake_wr >= 0) {
    const char byte = 'u';
    [[maybe_unused]] const ssize_t r = ::write(impl_->wake_wr, &byte, 1);
  }
}

void Server::join() {
  if (!impl_->started || impl_->joined) return;
  impl_->accept_thread.join();
  impl_->joined = true;
}

CachePoolStats Server::cache_stats() const {
  return impl_->service.cache_stats();
}

Service& Server::service() { return impl_->service; }

}  // namespace topomap::svc
