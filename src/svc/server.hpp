// svc::Server — topomapd's connection and scheduling layer.
//
// Listens on a unix-domain socket (and optionally TCP on localhost behind
// the same framing), reads framed JSON requests, and executes them on a
// fixed worker pool over a *bounded* queue:
//
//   * Backpressure: when the queue is full, connection readers block
//     instead of buffering — a flood of requests stalls at the sockets,
//     bounding daemon memory.  Malformed frames/requests are answered
//     inline with structured error responses (framing desync closes the
//     connection, since the byte stream can no longer be trusted).
//   * Topology-affine batching: each worker prefers the queued request
//     whose machine key matches the one it just served, so a burst of
//     same-machine requests drains back-to-back through the warm CachePool
//     entry while other machines' requests go to other workers.  Combined
//     with the pool's build coalescing, N queued requests on one machine
//     cost one distance-plane fill.
//   * Responses carry the request id and may complete out of order across
//     a pipelined connection; per-connection writes are serialized.
//
// Request lifecycle telemetry: the server mints a correlation id the
// moment a request parses off the wire and threads it — with enqueue/
// dequeue timestamps — through the queue to Service::handle, so the
// queue-wait stage is attributed exactly.  Serialization is timed here
// too (the response is rendered by the worker, outside the connection
// write lock).  See svc/service.hpp for the full stage breakdown.
//
// Shutdown: stop() is async-signal-safe (one write to a self-pipe).  The
// sequence drains cleanly — stop accepting, EOF every connection, finish
// every queued request, join the workers — so a SIGTERM'd daemon exits 0
// with no request dropped.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "svc/frame.hpp"
#include "svc/service.hpp"

namespace topomap::svc {

struct ServerOptions {
  /// Unix-domain socket path; bound fresh (a stale file is replaced).
  std::string socket_path;
  /// TCP listener on 127.0.0.1:<port> speaking the same framing; 0 = off.
  int tcp_port = 0;
  /// Worker threads executing requests.
  std::size_t workers = 4;
  /// Bounded request-queue depth; readers block when it is full.
  std::size_t queue_capacity = 64;
  /// Per-frame payload cap.
  std::size_t max_payload = kDefaultMaxPayload;
  ServiceOptions service;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the accept loop and workers.  Returns once the
  /// listeners are live (a client may connect immediately).  Throws
  /// io_error when binding fails.
  void start();

  /// Request shutdown.  Async-signal-safe: may be called from a SIGTERM/
  /// SIGINT handler.
  void stop();

  /// Ask the accept loop to dump the flight-recorder ring to stderr.
  /// Async-signal-safe (one self-pipe write) — topomapd calls this from
  /// its SIGUSR1 handler.
  void request_flight_dump();

  /// Wait for the clean-shutdown drain to finish (accept loop, readers,
  /// workers all joined).  Call after stop(); also harmless after a start()
  /// that already stopped.
  void join();

  /// Pool statistics passthrough (the load bench reads hit rates here when
  /// running the server in-process).
  CachePoolStats cache_stats() const;

  /// The request executor (telemetry state: flight recorder, metrics
  /// snapshot, event-log rotations).  Valid for the server's lifetime.
  Service& service();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace topomap::svc
