#include "svc/service.hpp"

#include <cctype>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <utility>
#include <vector>

#include "core/cache_handle.hpp"
#include "core/contention.hpp"
#include "core/fault_aware.hpp"
#include "core/metrics.hpp"
#include "core/optimal_lb.hpp"
#include "graph/factory.hpp"
#include "graph/quotient.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "runtime/evacuate.hpp"
#include "runtime/rank_reorder.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "svc/metrics.hpp"
#include "topo/components.hpp"

namespace topomap::svc {

namespace {

/// The request's strategy wired to the pooled machine: a fresh CacheHandle
/// pre-seeded with the pool's distance plane, so every stage of the
/// composition hits the shared fill instead of rebuilding O(p^2) state.
core::StrategyPtr make_pooled_strategy(const std::string& spec,
                                       const MachineEntry& entry) {
  auto handle = std::make_shared<core::CacheHandle>();
  const topo::Topology& machine = entry.machine();
  if (entry.plane && entry.plane->size() == machine.size())
    handle->seed(machine, entry.plane);
  return core::make_strategy_with_handle(spec, core::DistanceMode::kCached,
                                         handle);
}

/// The CLI's tasks-vs-processors check (exit 1 there, "usage" here).
void require_square_or_oversub(const graph::TaskGraph& g,
                               const topo::Topology& topo,
                               const core::MappingStrategy& strategy) {
  if (g.num_vertices() != topo.size() &&
      !(strategy.supports_oversubscription() &&
        g.num_vertices() > topo.size()))
    throw usage_error(
        "workload has " + std::to_string(g.num_vertices()) +
        " tasks but the machine has " + std::to_string(topo.size()) +
        " processors; use `topomap pipeline` or strategy `hier` when tasks "
        "> procs");
}

json::Value fault_summary(const topo::FaultOverlay& overlay) {
  json::Value v = json::Value::object();
  v.set("failed_nodes", overlay.num_failed_nodes());
  v.set("failed_links", overlay.num_failed_links());
  v.set("degraded_links", overlay.num_degraded_links());
  v.set("alive", overlay.num_alive());
  v.set("size", overlay.size());
  return v;
}

/// The exact bytes `topomap map --output` writes: full rank mapping, or the
/// placed tasks only when faults quarantined part of the workload.
std::string mapping_bytes(const core::Mapping& m,
                          bool any_quarantined = false) {
  std::ostringstream os;
  if (!any_quarantined) {
    rts::write_rank_mapping(os, m);
  } else {
    for (std::size_t t = 0; t < m.size(); ++t)
      if (m[t] != core::kUnassigned) os << t << ' ' << m[t] << '\n';
  }
  return os.str();
}

}  // namespace

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      pool_(options_.cache_capacity),
      flight_(options_.flight_capacity) {
  if (!options_.event_log_path.empty())
    event_log_.open(options_.event_log_path, options_.event_log_max_bytes);
}

std::string Service::mint_correlation_id() {
  return "r-" + std::to_string(
                    next_corr_.fetch_add(1, std::memory_order_relaxed));
}

void Service::set_queue_depth_probe(std::function<std::size_t()> probe) {
  queue_depth_probe_ = std::move(probe);
}

Response Service::handle(const Request& req) {
  return handle(req, RequestContext{});
}

Response Service::handle(const Request& req, const RequestContext& ctx) {
  // Mapping kernels run their parallel regions inline on this serving
  // thread: request-level concurrency is the only concurrency, and the
  // thread-count-invariance contract keeps results byte-identical.
  support::InlineScope inline_scope;
  OBS_SPAN("svc/request");
  Lifecycle lc;
  lc.kind = to_string(req.kind);
  lc.corr = ctx.corr.empty() ? mint_correlation_id() : ctx.corr;
  if (ctx.enqueue_ns != 0 && ctx.dequeue_ns >= ctx.enqueue_ns)
    lc.queue_wait_ns = ctx.dequeue_ns - ctx.enqueue_ns;
  const std::uint64_t t_start = obs::now_ns();
  const int kind_index = static_cast<int>(req.kind);
  Response resp;
  resp.id = req.id;
  try {
    resp.result = dispatch(req, lc);
  } catch (...) {
    ++failed_;
    ++failed_by_kind_[kind_index];
    OBS_COUNTER_ADD("svc/requests_failed", 1);
    finish_request(req, lc, false, t_start, obs::now_ns() - t_start);
    write_report(req, false);
    return make_error_response(req.id, std::current_exception());
  }
  resp.ok = true;
  ++served_;
  ++served_by_kind_[kind_index];
  OBS_COUNTER_ADD("svc/requests_served", 1);
  finish_request(req, lc, true, t_start, obs::now_ns() - t_start);
  write_report(req, true);
  return resp;
}

json::Value Service::dispatch(const Request& req, Lifecycle& lc) {
  switch (req.kind) {
    case RequestKind::kMap: return run_map(req, lc);
    case RequestKind::kExplain: return run_explain(req, lc);
    case RequestKind::kEvacuate: return run_evacuate(req, lc);
    case RequestKind::kOptimal: return run_optimal(req, lc);
    case RequestKind::kStatus: return run_status();
    case RequestKind::kMetrics: return metrics_snapshot();
    case RequestKind::kFlight: return run_flight();
  }
  TOPOMAP_UNREACHABLE("unhandled RequestKind");
}

MachineEntryPtr Service::acquire_timed(const std::string& topology,
                                       const topo::FaultSpec& faults,
                                       Lifecycle& lc) {
  const std::uint64_t t0 = obs::now_ns();
  MachineEntryPtr entry = pool_.acquire(topology, faults);
  const std::uint64_t dur = obs::now_ns() - t0;
  lc.acquire_ns += dur;
  flight_.record(lc.corr, lc.kind, "acquire", t0, dur);
  return entry;
}

void Service::finish_request(const Request& req, const Lifecycle& lc,
                             bool ok, std::uint64_t t_start_ns,
                             std::uint64_t total_ns) {
  flight_.record(lc.corr, lc.kind, ok ? "done" : "error", t_start_ns,
                 total_ns);
  // The kernel stage is the handler time not spent acquiring pooled
  // machine state (serialize happens on the server after handle returns).
  const std::uint64_t kernel_ns =
      total_ns >= lc.acquire_ns ? total_ns - lc.acquire_ns : 0;
  OBS_ONLY({
    if (obs::enabled()) {
      obs::Registry& reg = obs::Registry::instance();
      const std::string prefix = std::string("svc/") + lc.kind + "/";
      if (lc.queue_wait_ns > 0)
        reg.observe(prefix + "queue_wait_us",
                    static_cast<double>(lc.queue_wait_ns / 1000));
      reg.observe(prefix + "acquire_us",
                  static_cast<double>(lc.acquire_ns / 1000));
      reg.observe(prefix + "kernel_us",
                  static_cast<double>(kernel_ns / 1000));
      reg.observe(prefix + "total_us",
                  static_cast<double>(total_ns / 1000));
    }
  });
  if (event_log_.active()) {
    json::Value line = json::Value::object();
    line.set("corr", lc.corr);
    line.set("id", req.id);
    line.set("kind", lc.kind);
    line.set("ok", ok);
    line.set("t_start_ns", t_start_ns);
    line.set("queue_wait_us", lc.queue_wait_ns / 1000);
    line.set("acquire_us", lc.acquire_ns / 1000);
    line.set("kernel_us", kernel_ns / 1000);
    line.set("total_us", total_ns / 1000);
    event_log_.append(line.dump());
  }
}

json::Value Service::run_map(const Request& req, Lifecycle& lc) {
  // Same Rng stream as `topomap map`: graph generation, then mapping.
  Rng rng(req.seed);
  const graph::TaskGraph g = graph::make_task_graph(req.tasks, rng);
  const MachineEntryPtr entry =
      acquire_timed(req.topology, req.fault_spec(), lc);
  const topo::Topology& machine = entry->machine();
  const core::StrategyPtr strategy = make_pooled_strategy(req.strategy, *entry);

  core::Mapping m;
  std::vector<int> quarantined;
  std::string partition_note;
  if (entry->overlay) {
    const topo::ComponentSplit split =
        topo::connected_components(*entry->overlay);
    if (split.partitioned() &&
        g.num_vertices() > static_cast<int>(split.primary().size())) {
      core::PartitionedMapResult pr =
          core::map_on_largest_component(*strategy, g, *entry->overlay, rng);
      m = std::move(pr.mapping);
      quarantined = std::move(pr.quarantined);
      partition_note = topo::describe_partition(*entry->overlay, split);
    } else {
      m = core::map_on_alive(*strategy, g, *entry->overlay, rng);
    }
  } else {
    require_square_or_oversub(g, *entry->base, *strategy);
    m = strategy->map(g, *entry->base, rng);
  }

  // Metrics over the placed tasks only, like the CLI's report.
  const graph::TaskGraph* metric_g = &g;
  core::Mapping metric_m = m;
  graph::Subgraph placed_view;
  if (!quarantined.empty()) {
    std::vector<int> placed_ids;
    for (int t = 0; t < g.num_vertices(); ++t)
      if (m[static_cast<std::size_t>(t)] != core::kUnassigned)
        placed_ids.push_back(t);
    placed_view = graph::induced_subgraph(g, placed_ids);
    metric_g = &placed_view.graph;
    metric_m.clear();
    for (int t : placed_ids)
      metric_m.push_back(m[static_cast<std::size_t>(t)]);
  }

  json::Value result = json::Value::object();
  result.set("workload", g.label());
  result.set("edges", g.num_edges());
  result.set("comm_bytes", g.total_comm_bytes());
  result.set("machine", entry->base->name());
  result.set("strategy", strategy->name());
  if (entry->overlay) result.set("faults", fault_summary(*entry->overlay));
  if (!partition_note.empty()) {
    result.set("partition", partition_note);
    json::Value q = json::Value::array();
    for (int t : quarantined) q.push_back(t);
    result.set("quarantined", std::move(q));
  }
  result.set("hop_bytes", core::hop_bytes(*metric_g, machine, metric_m));
  result.set("hops_per_byte",
             core::hops_per_byte(*metric_g, machine, metric_m));
  try {
    const core::LinkLoadStats links =
        core::link_loads(*metric_g, machine, metric_m);
    json::Value ll = json::Value::object();
    ll.set("max_bytes", links.max_bytes);
    ll.set("mean_bytes", links.mean_bytes);
    ll.set("links_used", links.links_used);
    ll.set("links_total", links.links_total);
    result.set("link_loads", std::move(ll));
  } catch (const precondition_error&) {
    result.set("link_loads", json::Value());  // no processor-level routes
  }
  result.set("mapping", mapping_bytes(m, !quarantined.empty()));
  return result;
}

json::Value Service::run_explain(const Request& req, Lifecycle& lc) {
  Rng rng(req.seed);
  const graph::TaskGraph g = graph::make_task_graph(req.tasks, rng);
  const MachineEntryPtr entry =
      acquire_timed(req.topology, req.fault_spec(), lc);
  const topo::Topology& machine = entry->machine();
  const core::StrategyPtr strategy = make_pooled_strategy(req.strategy, *entry);

  const bool diffed = !req.baseline.empty();
  if (req.baseline_blind && !diffed)
    throw usage_error("baseline_blind needs a baseline strategy");
  if (req.baseline_blind && entry->overlay &&
      (entry->overlay->num_failed_nodes() > 0 ||
       entry->overlay->num_failed_links() > 0))
    throw usage_error(
        "baseline_blind supports soft faults only (a blind mapping may land "
        "on failed processors)");

  core::Mapping m;
  if (entry->overlay) {
    m = core::map_on_alive(*strategy, g, *entry->overlay, rng);
  } else {
    require_square_or_oversub(g, *entry->base, *strategy);
    m = strategy->map(g, *entry->base, rng);
  }
  core::Mapping baseline_m;
  if (diffed) {
    const core::StrategyPtr baseline_strategy =
        make_pooled_strategy(req.baseline, *entry);
    Rng baseline_rng(req.seed);
    if (entry->overlay && !req.baseline_blind) {
      baseline_m =
          core::map_on_alive(*baseline_strategy, g, *entry->overlay,
                             baseline_rng);
    } else {
      // Blind (or no faults): mapped on the pristine machine, evaluated on
      // the actual one.
      topo::FaultOverlay healthy(entry->base);
      baseline_m =
          core::map_on_alive(*baseline_strategy, g, healthy, baseline_rng);
    }
  }

  core::ContentionReport attr;
  try {
    attr = core::attribute_link_loads(g, machine, m);
  } catch (const precondition_error& e) {
    // The CLI reports this as a usage mistake (exit 1).
    throw usage_error(
        std::string(
            "this machine has no processor-level routes to attribute (") +
        e.what() + ")");
  }

  json::Value result = json::Value::object();
  result.set("workload", g.label());
  result.set("machine", entry->base->name());
  result.set("strategy", strategy->name());
  if (entry->overlay) result.set("faults", fault_summary(*entry->overlay));
  result.set("hop_bytes", core::hop_bytes(g, machine, m));
  result.set("stats", core::contention_stats_to_json(attr.stats));
  result.set("links", core::contention_links_to_json(attr, req.top_k));
  if (diffed) {
    const core::ContentionReport baseline_attr =
        core::attribute_link_loads(g, machine, baseline_m);
    const core::ContentionDiff diff =
        core::diff_contention(baseline_attr, attr);
    json::Value b = json::Value::object();
    b.set("strategy", req.baseline);
    b.set("blind", req.baseline_blind);
    b.set("stats", core::contention_stats_to_json(baseline_attr.stats));
    result.set("baseline", std::move(b));
    result.set("diff", core::contention_diff_to_json(diff, req.top_k));
  }
  result.set("mapping", mapping_bytes(m));
  return result;
}

json::Value Service::run_evacuate(const Request& req, Lifecycle& lc) {
  const topo::FaultSpec faults = req.fault_spec();
  if (faults.empty())
    throw usage_error(
        "evacuate needs at least one fault (fail_link/fail_node/"
        "degrade_link/random_*)");
  Rng rng(req.seed);
  const graph::TaskGraph g = graph::make_task_graph(req.tasks, rng);
  const MachineEntryPtr entry = acquire_timed(req.topology, faults, lc);
  const core::StrategyPtr strategy = make_pooled_strategy(req.strategy, *entry);

  // Map on the healthy machine first: the faults strike a running job.
  topo::FaultOverlay healthy(entry->base);
  rts::EvacuateOptions evac_options;
  evac_options.refine_passes = req.refine_passes;
  evac_options.load_weight = req.load_weight;

  const core::Mapping before = core::map_on_alive(*strategy, g, healthy, rng);
  const double hb_before = core::hop_bytes(g, *entry->base, before);
  const rts::EvacuateComparison cmp = rts::compare_evacuate_vs_remap(
      g, *entry->overlay, before, *strategy, rng, evac_options);

  json::Value result = json::Value::object();
  result.set("workload", g.label());
  result.set("machine", entry->base->name());
  result.set("strategy", strategy->name());
  result.set("faults", fault_summary(*entry->overlay));
  result.set("hop_bytes_before", hb_before);
  json::Value evac = json::Value::object();
  evac.set("stranded", cmp.evac.stranded);
  evac.set("migrations", cmp.evac.migrations);
  evac.set("refine_swaps", cmp.evac.refine_swaps);
  evac.set("hop_bytes", cmp.evac.hop_bytes);
  evac.set("load_imbalance", cmp.evac.load_imbalance);
  result.set("evacuate", std::move(evac));
  json::Value full = json::Value::object();
  full.set("migrations", cmp.full_migrations);
  full.set("hop_bytes", cmp.full_hop_bytes);
  result.set("full_remap", std::move(full));
  result.set("hop_bytes_ratio",
             cmp.full_hop_bytes > 0.0 ? cmp.evac.hop_bytes / cmp.full_hop_bytes
                                      : 1.0);
  result.set("mapping", mapping_bytes(cmp.evac.mapping));
  return result;
}

json::Value Service::run_optimal(const Request& req, Lifecycle& lc) {
  Rng rng(req.seed);
  const graph::TaskGraph g = graph::make_task_graph(req.tasks, rng);
  const MachineEntryPtr entry =
      acquire_timed(req.topology, req.fault_spec(), lc);
  const topo::Topology& machine = entry->machine();

  core::OptimalOptions opts;
  opts.node_budget = req.budget;
  opts.symmetry = !req.no_symmetry;
  const core::OptimalResult optimal =
      core::find_optimal_mapping(g, machine, opts);

  json::Value result = json::Value::object();
  result.set("workload", g.label());
  result.set("machine", machine.name());
  if (entry->overlay) result.set("faults", fault_summary(*entry->overlay));
  result.set("hop_bytes", optimal.hop_bytes);
  result.set("nodes", static_cast<std::int64_t>(optimal.nodes));
  result.set("pruned", static_cast<std::int64_t>(optimal.pruned));
  result.set("root_candidates", optimal.root_candidates);
  if (!req.compare.empty()) {
    const core::StrategyPtr strategy =
        make_pooled_strategy(req.compare, *entry);
    Rng crng(req.seed);
    const core::Mapping cm =
        entry->overlay
            ? core::map_on_alive(*strategy, g, *entry->overlay, crng)
            : strategy->map(g, *entry->base, crng);
    const double chb = core::hop_bytes(g, machine, cm);
    json::Value cmp = json::Value::object();
    cmp.set("strategy", strategy->name());
    cmp.set("hop_bytes", chb);
    cmp.set("optimality_gap",
            optimal.hop_bytes > 0.0 ? chb / optimal.hop_bytes : 1.0);
    result.set("compare", std::move(cmp));
  }
  // `topomap optimal --output` bytes (plain task/processor lines).
  std::ostringstream os;
  for (std::size_t t = 0; t < optimal.mapping.size(); ++t)
    os << t << ' ' << optimal.mapping[t] << '\n';
  result.set("mapping", os.str());
  return result;
}

json::Value Service::run_status() const {
  json::Value result = json::Value::object();
  result.set("requests_served", served_.load());
  result.set("requests_failed", failed_.load());
  const CachePoolStats cs = pool_.stats();
  json::Value cache = json::Value::object();
  cache.set("hits", cs.hits);
  cache.set("misses", cs.misses);
  cache.set("evictions", cs.evictions);
  cache.set("entries", cs.entries);
  cache.set("capacity", cs.capacity);
  result.set("cache", std::move(cache));
  return result;
}

json::Value Service::run_flight() const {
  return flight_.to_json();
}

json::Value Service::metrics_snapshot() const {
  json::Value doc = json::Value::object();
  doc.set("schema", kMetricsSchemaName);
  doc.set("schema_version", kMetricsSchemaVersion);

  json::Value requests = json::Value::object();
  requests.set("served", served_.load());
  requests.set("failed", failed_.load());
  // Every kind is always present so the deterministic key set never
  // depends on which kinds happened to be exercised.
  json::Value by_kind = json::Value::object();
  for (int i = 0; i < kNumRequestKinds; ++i) {
    json::Value counts = json::Value::object();
    counts.set("served", served_by_kind_[i].load());
    counts.set("failed", failed_by_kind_[i].load());
    by_kind.set(to_string(static_cast<RequestKind>(i)), std::move(counts));
  }
  requests.set("by_kind", std::move(by_kind));
  doc.set("requests", std::move(requests));

  doc.set("queue_depth",
          queue_depth_probe_ ? queue_depth_probe_() : std::size_t{0});

  const CachePoolStats cs = pool_.stats();
  json::Value pool = json::Value::object();
  pool.set("hits", cs.hits);
  pool.set("misses", cs.misses);
  pool.set("evictions", cs.evictions);
  pool.set("entries", cs.entries);
  pool.set("capacity", cs.capacity);
  doc.set("pool", std::move(pool));

  // The bucket layout is a compile-time property of obs::Histogram — a
  // fixed descriptor, not per-run boundary lists, so this section is
  // byte-identical across runs by construction.
  json::Value scheme = json::Value::object();
  scheme.set("kind", "log2-linear");
  scheme.set("sub_buckets", obs::Histogram::kSubBuckets);
  scheme.set("buckets", obs::Histogram::kBucketCount);
  doc.set("bucket_scheme", std::move(scheme));

  json::Value hists = json::Value::object();
  for (const auto& [name, h] : obs::Registry::instance().histograms())
    hists.set(name, obs::histogram_to_json(h));
  doc.set("histograms", std::move(hists));
  return doc;
}

void Service::write_report(const Request& req, bool ok) const {
  if (options_.report_dir.empty()) return;
  obs::Report report;
  report.set_meta("command", std::string("svc/") + to_string(req.kind));
  report.set_meta("request_id", req.id);
  report.set_meta("workload", req.tasks);
  report.set_meta("machine", req.topology);
  report.set_meta("strategy", req.strategy);
  report.set_meta("seed", std::to_string(req.seed));
  report.set_meta("ok", ok ? "true" : "false");
  report.capture();
  std::string name;
  for (char c : req.id)
    name.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  try {
    std::error_code ec;
    std::filesystem::create_directories(options_.report_dir, ec);
    report.write_file(options_.report_dir + "/req-" + name + ".json");
  } catch (const std::exception& e) {
    // Artifact I/O must not poison an already-computed response.
    std::cerr << "topomapd: warning: request report dropped: " << e.what()
              << "\n";
  }
}

}  // namespace topomap::svc
