#include "svc/cache_pool.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "support/error.hpp"
#include "svc/protocol.hpp"
#include "topo/factory.hpp"

namespace topomap::svc {

namespace {

MachineEntryPtr build_entry(const std::string& key,
                            const std::string& topology_spec,
                            const topo::FaultSpec& faults) {
  auto entry = std::make_shared<MachineEntry>();
  entry->key = key;
  entry->base = topo::make_topology(topology_spec);
  if (!faults.empty())
    entry->overlay = topo::build_fault_overlay(entry->base, faults);
  try {
    entry->plane =
        std::make_shared<const topo::DistanceCache>(entry->machine());
  } catch (const precondition_error&) {
    // Machine above the dense-plane cap (huge hierarchical targets):
    // serve it plane-less; kernels build their own scoped caches.
    entry->plane = nullptr;
  }
  return entry;
}

}  // namespace

CachePool::CachePool(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

void CachePool::touch_lru(const std::string& key) {
  const auto it = std::find(lru_.begin(), lru_.end(), key);
  if (it != lru_.end()) lru_.splice(lru_.begin(), lru_, it);
}

MachineEntryPtr CachePool::acquire(const std::string& topology_spec,
                                   const topo::FaultSpec& faults) {
  const std::string key = machine_key(topology_spec, faults);
  std::unique_lock<std::mutex> lock(mu_);
  if (const auto it = slots_.find(key); it != slots_.end()) {
    // Present or in flight: either way the fill is shared, count a hit.
    ++hits_;
    OBS_COUNTER_ADD("svc/cache_hits", 1);
    SlotPtr slot = it->second;
    slot->ready.wait(lock, [&] { return !slot->building; });
    if (slot->error) std::rethrow_exception(slot->error);
    touch_lru(key);
    return slot->entry;
  }
  ++misses_;
  OBS_COUNTER_ADD("svc/cache_misses", 1);
  SlotPtr slot = std::make_shared<Slot>();
  slots_[key] = slot;
  lock.unlock();

  MachineEntryPtr entry;
  std::exception_ptr error;
  try {
    entry = build_entry(key, topology_spec, faults);
  } catch (...) {
    error = std::current_exception();
  }

  lock.lock();
  slot->building = false;
  if (error) {
    // Propagate to every waiter and forget the key so a later acquire
    // retries instead of serving a poisoned entry forever.
    slot->error = error;
    slots_.erase(key);
    slot->ready.notify_all();
    std::rethrow_exception(error);
  }
  slot->entry = entry;
  lru_.push_front(key);
  slot->ready.notify_all();
  while (lru_.size() > capacity_) {
    slots_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
    OBS_COUNTER_ADD("svc/cache_evictions", 1);
  }
  return entry;
}

CachePoolStats CachePool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CachePoolStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace topomap::svc
