#include "svc/frame.hpp"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdint>
#include <cstring>

#include "support/error.hpp"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // non-Linux: callers ignore SIGPIPE instead
#endif

namespace topomap::svc {

namespace {

std::uint32_t read_be32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return (std::uint32_t{b[0]} << 24) | (std::uint32_t{b[1]} << 16) |
         (std::uint32_t{b[2]} << 8) | std::uint32_t{b[3]};
}

void append_be32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>(v & 0xFF));
}

}  // namespace

std::string encode_frame(std::string_view payload) {
  TOPOMAP_REQUIRE(payload.size() <= 0xFFFFFFFFu,
                  "frame payload exceeds the 32-bit length field");
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(kFrameMagic);
  append_be32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

void FrameDecoder::validate_prefix() const {
  const std::size_t check = std::min(buffer_.size(), kFrameMagic.size());
  if (buffer_.compare(0, check, kFrameMagic, 0, check) != 0)
    throw precondition_error(
        "svc frame: bad magic (expected \"TMP1\") — peer is not speaking "
        "the topomapd framing");
  if (buffer_.size() >= kFrameHeaderSize) {
    const std::uint32_t len = read_be32(buffer_.data() + kFrameMagic.size());
    if (len > max_payload_)
      throw precondition_error(
          "svc frame: declared payload of " + std::to_string(len) +
          " bytes exceeds the cap of " + std::to_string(max_payload_));
  }
}

void FrameDecoder::feed(std::string_view bytes) {
  buffer_.append(bytes);
  validate_prefix();
}

std::optional<std::string> FrameDecoder::next() {
  if (buffer_.size() < kFrameHeaderSize) return std::nullopt;
  const std::uint32_t len = read_be32(buffer_.data() + kFrameMagic.size());
  if (buffer_.size() < kFrameHeaderSize + len) return std::nullopt;
  std::string payload = buffer_.substr(kFrameHeaderSize, len);
  buffer_.erase(0, kFrameHeaderSize + len);
  // The tail of a multi-frame read is a new prefix; re-check it now so a
  // pipelined garbage frame fails here rather than on the next feed().
  if (!buffer_.empty()) validate_prefix();
  return payload;
}

namespace {

/// Read exactly `n` bytes.  Returns the count read before EOF (< n only at
/// EOF); throws io_error on a hard read failure.
std::size_t read_exact(int fd, char* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r == 0) break;  // EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      throw io_error(std::string("svc frame: read failed: ") +
                     std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return got;
}

}  // namespace

bool read_frame(int fd, std::string& payload, std::size_t max_payload) {
  char header[kFrameHeaderSize];
  const std::size_t got = read_exact(fd, header, kFrameHeaderSize);
  if (got == 0) return false;  // clean close between frames
  if (got < kFrameHeaderSize)
    throw io_error("svc frame: connection closed mid-header");
  if (std::string_view(header, kFrameMagic.size()) != kFrameMagic)
    throw precondition_error(
        "svc frame: bad magic (expected \"TMP1\") — peer is not speaking "
        "the topomapd framing");
  const std::uint32_t len = read_be32(header + kFrameMagic.size());
  if (len > max_payload)
    throw precondition_error(
        "svc frame: declared payload of " + std::to_string(len) +
        " bytes exceeds the cap of " + std::to_string(max_payload));
  payload.resize(len);
  if (read_exact(fd, payload.data(), len) < len)
    throw io_error("svc frame: connection closed mid-payload");
  return true;
}

void write_frame(int fd, std::string_view payload, std::size_t max_payload) {
  if (payload.size() > max_payload)
    throw io_error("svc frame: response of " +
                   std::to_string(payload.size()) +
                   " bytes exceeds the frame cap");
  const std::string frame = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t w =
        ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw io_error(std::string("svc frame: write failed: ") +
                     std::strerror(errno));
    }
    sent += static_cast<std::size_t>(w);
  }
}

}  // namespace topomap::svc
