// svc::Client — blocking topomapd client connection.
//
// One framed request/response exchange per call().  Used by the `topomap
// client` subcommand, the svc tests, and the load bench; it reuses the
// exact protocol structs the server parses, so the two sides cannot drift.
#pragma once

#include <string>

#include "svc/frame.hpp"
#include "svc/protocol.hpp"

namespace topomap::svc {

class Client {
 public:
  /// Connect to a daemon's unix-domain socket; throws io_error when the
  /// daemon is not there.
  static Client connect_unix(const std::string& path);

  /// Connect to the optional TCP listener (same framing).
  static Client connect_tcp(const std::string& host, int port);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request and block for its response.  Throws io_error when
  /// the connection drops, precondition_error on a malformed response, and
  /// invariant_error when the response id does not echo the request id
  /// (calls on one Client are strictly sequential, so ids must match).
  Response call(const Request& req);

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_;
};

}  // namespace topomap::svc
