#include "svc/metrics.hpp"

#include <cctype>
#include <cmath>
#include <set>
#include <sstream>

#include "support/error.hpp"

namespace topomap::svc {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw precondition_error("svc metrics: " + what);
}

const json::Value& member(const json::Value& obj, const std::string& key,
                          const std::string& where) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) fail("missing field '" + where + key + "'");
  return *v;
}

double number(const json::Value& v, const std::string& key) {
  if (!v.is_number()) fail("field '" + key + "' must be a number");
  return v.as_number();
}

std::int64_t non_negative_int(const json::Value& v, const std::string& key) {
  const double d = number(v, key);
  if (std::floor(d) != d || d < 0.0 || d > 9007199254740992.0)
    fail("field '" + key + "' must be a non-negative integer");
  return static_cast<std::int64_t>(d);
}

std::string string_field(const json::Value& v, const std::string& key) {
  if (!v.is_string()) fail("field '" + key + "' must be a string");
  return v.as_string();
}

/// Reject keys outside the allowed set — the snapshot schema is strict in
/// both directions, like svc/protocol.hpp.
void only_keys(const json::Value& obj, const std::set<std::string>& allowed,
               const std::string& where) {
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    if (allowed.find(key) == allowed.end())
      fail("unknown field '" + where + key + "'");
  }
}

void check_schema(const json::Value& doc, const char* name, int version) {
  if (!doc.is_object()) fail("document is not a JSON object");
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != name)
    fail(std::string("expected schema '") + name + "'");
  const json::Value* ver = doc.find("schema_version");
  if (ver == nullptr || !ver->is_number() || ver->as_number() != version)
    fail("unsupported schema_version (want " + std::to_string(version) +
         ")");
}

void validate_counts_pair(const json::Value& v, const std::string& where) {
  if (!v.is_object()) fail("'" + where + "' must be an object");
  only_keys(v, {"served", "failed"}, where + ".");
  non_negative_int(member(v, "served", where + "."), where + ".served");
  non_negative_int(member(v, "failed", where + "."), where + ".failed");
}

void validate_histogram(const json::Value& v, const std::string& name) {
  if (!v.is_object()) fail("histogram '" + name + "' must be an object");
  const std::string where = "histograms." + name + ".";
  only_keys(v,
            {"count", "sum", "min", "max", "mean", "p50", "p90", "p99",
             "buckets"},
            where);
  const std::int64_t count =
      non_negative_int(member(v, "count", where), where + "count");
  for (const char* k : {"sum", "min", "max", "mean", "p50", "p90", "p99"})
    number(member(v, k, where), where + k);
  const json::Value& buckets = member(v, "buckets", where);
  if (!buckets.is_array()) fail("'" + where + "buckets' must be an array");
  std::int64_t total = 0;
  double prev_lo = -1.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const json::Value& triple = buckets.items()[i];
    const std::string at = where + "buckets[" + std::to_string(i) + "]";
    if (!triple.is_array() || triple.size() != 3)
      fail("'" + at + "' must be a [lo, hi, count] triple");
    const double lo = number(triple.items()[0], at + ".lo");
    const double hi = number(triple.items()[1], at + ".hi");
    const std::int64_t c =
        non_negative_int(triple.items()[2], at + ".count");
    if (!(lo < hi)) fail("'" + at + "' has lo >= hi");
    if (lo <= prev_lo) fail("'" + where + "buckets' must ascend by lo");
    if (c == 0) fail("'" + at + "' lists an empty bucket");
    prev_lo = lo;
    total += c;
  }
  if (total != count)
    fail("histogram '" + name + "': bucket counts sum to " +
         std::to_string(total) + " but count is " + std::to_string(count));
}

std::string sanitize_metric_name(const std::string& name) {
  std::string out = "topomap_";
  for (char c : name)
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  return out;
}

std::string fmt(double x) { return json::format_number(x); }

}  // namespace

void validate_metrics_snapshot(const json::Value& doc) {
  check_schema(doc, kMetricsSchemaName, kMetricsSchemaVersion);
  only_keys(doc,
            {"schema", "schema_version", "requests", "queue_depth", "pool",
             "bucket_scheme", "histograms"},
            "");

  const json::Value& requests = member(doc, "requests", "");
  if (!requests.is_object()) fail("'requests' must be an object");
  only_keys(requests, {"served", "failed", "by_kind"}, "requests.");
  non_negative_int(member(requests, "served", "requests."),
                   "requests.served");
  non_negative_int(member(requests, "failed", "requests."),
                   "requests.failed");
  const json::Value& by_kind = member(requests, "by_kind", "requests.");
  if (!by_kind.is_object()) fail("'requests.by_kind' must be an object");
  for (const auto& [kind, counts] : by_kind.members())
    validate_counts_pair(counts, "requests.by_kind." + kind);

  non_negative_int(member(doc, "queue_depth", ""), "queue_depth");

  const json::Value& pool = member(doc, "pool", "");
  if (!pool.is_object()) fail("'pool' must be an object");
  only_keys(pool, {"hits", "misses", "evictions", "entries", "capacity"},
            "pool.");
  for (const char* k : {"hits", "misses", "evictions", "entries", "capacity"})
    non_negative_int(member(pool, k, "pool."), std::string("pool.") + k);

  const json::Value& scheme = member(doc, "bucket_scheme", "");
  if (!scheme.is_object()) fail("'bucket_scheme' must be an object");
  only_keys(scheme, {"kind", "sub_buckets", "buckets"}, "bucket_scheme.");
  if (string_field(member(scheme, "kind", "bucket_scheme."),
                   "bucket_scheme.kind") != "log2-linear")
    fail("bucket_scheme.kind must be 'log2-linear'");
  if (non_negative_int(member(scheme, "sub_buckets", "bucket_scheme."),
                       "bucket_scheme.sub_buckets") <= 0)
    fail("bucket_scheme.sub_buckets must be positive");
  if (non_negative_int(member(scheme, "buckets", "bucket_scheme."),
                       "bucket_scheme.buckets") <= 0)
    fail("bucket_scheme.buckets must be positive");

  const json::Value& hists = member(doc, "histograms", "");
  if (!hists.is_object()) fail("'histograms' must be an object");
  for (const auto& [name, h] : hists.members()) validate_histogram(h, name);
}

void validate_flight_snapshot(const json::Value& doc) {
  check_schema(doc, kFlightSchemaName, kFlightSchemaVersion);
  only_keys(doc, {"schema", "schema_version", "capacity", "recorded",
                  "events"},
            "");
  if (non_negative_int(member(doc, "capacity", ""), "capacity") <= 0)
    fail("'capacity' must be positive");
  non_negative_int(member(doc, "recorded", ""), "recorded");
  const json::Value& events = member(doc, "events", "");
  if (!events.is_array()) fail("'events' must be an array");
  std::int64_t prev_seq = -1;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Value& ev = events.items()[i];
    const std::string at = "events[" + std::to_string(i) + "].";
    if (!ev.is_object()) fail("'" + at + "' must be an object");
    only_keys(ev, {"seq", "t_ns", "dur_ns", "corr", "kind", "stage"}, at);
    const std::int64_t seq =
        non_negative_int(member(ev, "seq", at), at + "seq");
    if (seq <= prev_seq) fail("'events' must ascend by seq");
    prev_seq = seq;
    non_negative_int(member(ev, "t_ns", at), at + "t_ns");
    non_negative_int(member(ev, "dur_ns", at), at + "dur_ns");
    if (string_field(member(ev, "corr", at), at + "corr").empty())
      fail("'" + at + "corr' must be non-empty");
    string_field(member(ev, "kind", at), at + "kind");
    if (string_field(member(ev, "stage", at), at + "stage").empty())
      fail("'" + at + "stage' must be non-empty");
  }
}

std::string metrics_to_prometheus(const json::Value& doc) {
  validate_metrics_snapshot(doc);
  std::ostringstream os;
  const json::Value& requests = *doc.find("requests");
  os << "# TYPE topomap_requests_served_total counter\n"
     << "topomap_requests_served_total "
     << fmt(requests.at("served").as_number()) << "\n"
     << "# TYPE topomap_requests_failed_total counter\n"
     << "topomap_requests_failed_total "
     << fmt(requests.at("failed").as_number()) << "\n";
  os << "# TYPE topomap_requests_by_kind_total counter\n";
  for (const auto& [kind, counts] : requests.at("by_kind").members()) {
    os << "topomap_requests_by_kind_total{kind=\"" << kind
       << "\",outcome=\"served\"} " << fmt(counts.at("served").as_number())
       << "\n"
       << "topomap_requests_by_kind_total{kind=\"" << kind
       << "\",outcome=\"failed\"} " << fmt(counts.at("failed").as_number())
       << "\n";
  }
  os << "# TYPE topomap_queue_depth gauge\n"
     << "topomap_queue_depth " << fmt(doc.at("queue_depth").as_number())
     << "\n";
  const json::Value& pool = *doc.find("pool");
  os << "# TYPE topomap_pool_events_total counter\n";
  for (const char* k : {"hits", "misses", "evictions"})
    os << "topomap_pool_events_total{event=\"" << k << "\"} "
       << fmt(pool.at(k).as_number()) << "\n";
  os << "# TYPE topomap_pool_entries gauge\n"
     << "topomap_pool_entries " << fmt(pool.at("entries").as_number())
     << "\n"
     << "# TYPE topomap_pool_capacity gauge\n"
     << "topomap_pool_capacity " << fmt(pool.at("capacity").as_number())
     << "\n";
  for (const auto& [name, h] : doc.at("histograms").members()) {
    const std::string metric = sanitize_metric_name(name);
    os << "# TYPE " << metric << " histogram\n";
    std::int64_t cum = 0;
    for (const json::Value& triple : h.at("buckets").items()) {
      cum += static_cast<std::int64_t>(triple.items()[2].as_number());
      os << metric << "_bucket{le=\"" << fmt(triple.items()[1].as_number())
         << "\"} " << cum << "\n";
    }
    os << metric << "_bucket{le=\"+Inf\"} "
       << fmt(h.at("count").as_number()) << "\n"
       << metric << "_sum " << fmt(h.at("sum").as_number()) << "\n"
       << metric << "_count " << fmt(h.at("count").as_number()) << "\n";
  }
  return os.str();
}

}  // namespace topomap::svc
