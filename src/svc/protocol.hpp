// The topomapd request/response protocol: schema-versioned JSON documents
// ("topomap.svc.request" / "topomap.svc.response", version 1) carried one
// per frame (svc/frame.hpp).
//
// A request names a kind — map, explain, evacuate, optimal, status,
// metrics, flight — plus the same parameter family the topomap CLI takes: workload/topology/
// strategy specs, a seed, and the fault flag family (verbatim
// topo::parse_fault_spec inputs, so the client reuses the CLI parser and
// the server revalidates).  Parsing is strict in both directions: wrong
// schema/version, missing ids, unknown kinds, unknown parameter keys, and
// mistyped values all throw topomap::precondition_error naming the field,
// so malformed requests fail loudly instead of mapping something the
// caller did not ask for.
//
// Responses are either {"status":"ok","result":{...}} or
// {"status":"error","error":{"category","message"}}.  Error categories
// mirror the CLI exit-code taxonomy 1:1 — "usage" → 1, "precondition" → 2,
// "invariant" → 3, "io" → 4 — so `topomap client` exits with exactly the
// code the equivalent one-shot command would have.
#pragma once

#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>

#include "support/json.hpp"
#include "topo/fault_spec.hpp"

namespace topomap::svc {

namespace json = ::topomap::support::json;

inline constexpr const char* kRequestSchemaName = "topomap.svc.request";
inline constexpr const char* kResponseSchemaName = "topomap.svc.response";
inline constexpr int kSchemaVersion = 1;

/// Request errors the CLI reports as usage mistakes (exit 1): well-formed
/// protocol, parameters that do not apply — e.g. a square-strategy mapping
/// request whose task count does not match the machine.
class usage_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class RequestKind {
  kMap,
  kExplain,
  kEvacuate,
  kOptimal,
  kStatus,
  kMetrics,  ///< telemetry snapshot (topomap.svc.metrics v1)
  kFlight,   ///< recent lifecycle events (topomap.svc.flight v1)
};

/// Number of request kinds (for per-kind counter arrays).
inline constexpr int kNumRequestKinds = 7;

const char* to_string(RequestKind kind);

/// Parses "map" | "explain" | "evacuate" | "optimal" | "status" |
/// "metrics" | "flight"; throws precondition_error on anything else.
RequestKind parse_request_kind(const std::string& s);

/// One protocol request.  Defaults match the CLI's, so a request carrying
/// only {id, kind} is the CLI's default invocation of that subcommand.
struct Request {
  std::string id;
  RequestKind kind = RequestKind::kStatus;

  std::string tasks = "stencil2d:8x8";
  std::string topology = "torus:8x8";
  std::string strategy = "topolb";
  std::uint64_t seed = 1;

  // explain
  std::string baseline;
  bool baseline_blind = false;
  int top_k = 3;

  // evacuate
  int refine_passes = 1;
  double load_weight = 0.0;

  // optimal
  std::int64_t budget = 20000000;
  std::string compare = "topolb";
  bool no_symmetry = false;

  // Fault flag family, verbatim CLI strings/counts (topo::parse_fault_spec).
  std::string fail_link;
  std::string fail_node;
  std::string degrade_link;
  std::string restore_node;
  std::string restore_link;
  std::int64_t random_link_faults = 0;
  std::int64_t random_node_faults = 0;
  std::int64_t random_degrades = 0;
  std::uint64_t fault_seed = 42;

  /// The parsed fault request; throws precondition_error on malformed
  /// entries exactly like the CLI flags would.
  topo::FaultSpec fault_spec() const;

  json::Value to_json() const;

  /// Strict parse + validation of one request document.
  static Request from_json(const json::Value& doc);
};

/// Canonical machine identity for svc::CachePool keying: the topology spec
/// plus the *parsed* fault spec serialized deterministically (so the key
/// is independent of flag-string whitespace/duplication quirks — parsing
/// is strict enough that equal keys mean identical machines).  This is the
/// server-side analogue of core::CacheHandle's identity+fault-version key.
std::string machine_key(const std::string& topology_spec,
                        const topo::FaultSpec& faults);

struct ErrorInfo {
  std::string category;  // "usage" | "precondition" | "invariant" | "io"
  std::string message;
};

/// The CLI exit code for an error category (unknown categories map to 1,
/// like any unclassified CLI failure).
int exit_code_for(const std::string& category);

struct Response {
  std::string id;
  bool ok = true;
  ErrorInfo error;                        // when !ok
  json::Value result = json::Value::object();  // when ok

  json::Value to_json() const;
  static Response from_json(const json::Value& doc);
};

/// Build the error response for the exception currently being handled,
/// mapping exception types onto the taxonomy (usage_error → "usage",
/// precondition_error → "precondition", invariant_error → "invariant",
/// io_error → "io", anything else → "usage" with the raw message).
Response make_error_response(const std::string& id, std::exception_ptr error);

}  // namespace topomap::svc
