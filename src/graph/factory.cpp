#include "graph/factory.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "graph/builders.hpp"
#include "graph/synthetic_md.hpp"
#include "support/error.hpp"

namespace topomap::graph {

namespace {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, delim)) out.push_back(item);
  return out;
}

int parse_int(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(s, &pos);
    TOPOMAP_REQUIRE(pos == s.size(), std::string("bad ") + what + ": " + s);
    return v;
  } catch (const precondition_error&) {
    throw;
  } catch (const std::exception&) {
    throw precondition_error(std::string("bad ") + what + ": " + s);
  }
}

double parse_real(const std::string& s, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    TOPOMAP_REQUIRE(pos == s.size(), std::string("bad ") + what + ": " + s);
    return v;
  } catch (const precondition_error&) {
    throw;
  } catch (const std::exception&) {
    throw precondition_error(std::string("bad ") + what + ": " + s);
  }
}

std::vector<int> parse_dims(const std::string& s, const char* what) {
  std::vector<int> dims;
  for (const auto& part : split(s, 'x')) dims.push_back(parse_int(part, what));
  return dims;
}

}  // namespace

TaskGraph make_task_graph(const std::string& spec, Rng& rng) {
  const auto parts = split(spec, ':');
  TOPOMAP_REQUIRE(parts.size() >= 2,
                  "workload spec must look like kind:params, got: " + spec);
  const std::string& kind = parts[0];

  if (kind == "stencil2d") {
    const auto dims = parse_dims(parts[1], "extent");
    TOPOMAP_REQUIRE(dims.size() == 2, "stencil2d needs WxH");
    const double bytes =
        parts.size() > 2 ? parse_real(parts[2], "bytes") : 1024.0;
    return stencil_2d(dims[0], dims[1], bytes);
  }
  if (kind == "stencil3d") {
    const auto dims = parse_dims(parts[1], "extent");
    TOPOMAP_REQUIRE(dims.size() == 3, "stencil3d needs WxHxD");
    const double bytes =
        parts.size() > 2 ? parse_real(parts[2], "bytes") : 1024.0;
    return stencil_3d(dims[0], dims[1], dims[2], bytes);
  }
  if (kind == "ring") {
    const double bytes =
        parts.size() > 2 ? parse_real(parts[2], "bytes") : 1024.0;
    return ring(parse_int(parts[1], "size"), bytes);
  }
  if (kind == "complete") {
    const double bytes =
        parts.size() > 2 ? parse_real(parts[2], "bytes") : 1024.0;
    return complete(parse_int(parts[1], "size"), bytes);
  }
  if (kind == "transpose") {
    const double bytes =
        parts.size() > 2 ? parse_real(parts[2], "bytes") : 1024.0;
    return transpose(parse_int(parts[1], "grid side"), bytes);
  }
  if (kind == "butterfly") {
    const double bytes =
        parts.size() > 2 ? parse_real(parts[2], "bytes") : 1024.0;
    return butterfly(parse_int(parts[1], "stages"), bytes);
  }
  if (kind == "er") {
    TOPOMAP_REQUIRE(parts.size() >= 3, "er spec is er:n:p[:maxbytes]");
    const double max_bytes =
        parts.size() > 3 ? parse_real(parts[3], "bytes") : 1024.0;
    return random_graph(parse_int(parts[1], "size"),
                        parse_real(parts[2], "probability"), 1.0, max_bytes,
                        rng);
  }
  if (kind == "rgg") {
    TOPOMAP_REQUIRE(parts.size() >= 3, "rgg spec is rgg:n:radius[:bytes]");
    const double bytes =
        parts.size() > 3 ? parse_real(parts[3], "bytes") : 1024.0;
    return random_geometric(parse_int(parts[1], "size"),
                            parse_real(parts[2], "radius"), bytes, rng);
  }
  if (kind == "md") {
    const auto dims = parse_dims(parts[1], "cell extent");
    TOPOMAP_REQUIRE(dims.size() == 3, "md needs CXxCYxCZ cells");
    MdParams params;
    params.cells_x = dims[0];
    params.cells_y = dims[1];
    params.cells_z = dims[2];
    if (parts.size() > 2) params.atoms_per_cell = parse_real(parts[2], "atoms");
    return synthetic_md(params, rng);
  }
  if (kind == "file") return read_task_graph_file(parts[1]);
  throw precondition_error("unknown workload kind: " + kind);
}

TaskGraph read_task_graph(std::istream& is, const std::string& label) {
  std::string line, keyword;
  int tasks = -1;
  TaskGraph::Builder builder(label);
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    if (tasks < 0) {
      ls >> keyword >> tasks;
      TOPOMAP_REQUIRE(ls && keyword == "tasks" && tasks > 0,
                      "task file must start with 'tasks N'");
      builder.add_vertices(tasks);
      continue;
    }
    int a = 0, b = 0;
    double bytes = 0.0;
    ls >> a >> b >> bytes;
    TOPOMAP_REQUIRE(static_cast<bool>(ls), "bad edge line: " + line);
    builder.add_edge(a, b, bytes);
  }
  TOPOMAP_REQUIRE(tasks > 0, "task file missing 'tasks N' header");
  return std::move(builder).build();
}

TaskGraph read_task_graph_file(const std::string& path) {
  std::ifstream in(path);
  TOPOMAP_REQUIRE(static_cast<bool>(in), "cannot open task file: " + path);
  return read_task_graph(in, "file[" + path + "]");
}

void write_task_graph(std::ostream& os, const TaskGraph& g) {
  os << "tasks " << g.num_vertices() << '\n';
  os << std::setprecision(17);
  for (const UndirectedEdge& e : g.edges())
    os << e.a << ' ' << e.b << ' ' << e.bytes << '\n';
}

}  // namespace topomap::graph
