// Quotient (coalesced) task graph: contract each partition group into one
// vertex.  This is the paper's phase-1 output — after METIS-style
// partitioning of the object graph into p groups, the p-vertex quotient
// graph is what the mapping heuristics place onto the p processors.
#pragma once

#include <vector>

#include "graph/task_graph.hpp"

namespace topomap::graph {

/// @param g           original task graph
/// @param assignment  group id in [0, num_groups) per vertex
/// @param num_groups  number of groups (every id must appear? no — empty
///                    groups become isolated zero-weight vertices)
/// Group vertex weight = sum of member weights; inter-group edge bytes =
/// sum of crossing edge bytes.  Intra-group communication vanishes (it is
/// intra-processor after mapping).
TaskGraph quotient_graph(const TaskGraph& g, const std::vector<int>& assignment,
                         int num_groups);

/// Average vertex degree of a graph (2|E| / |V|); the paper reports this
/// for coalesced LeanMD graphs to explain mappability.
double average_degree(const TaskGraph& g);

/// Induced subgraph on `vertices` (original ids; duplicates rejected).
/// Edges with both endpoints inside are kept.  local_to_parent[i] is the
/// original id of local vertex i (in the order given).
struct Subgraph {
  TaskGraph graph;
  std::vector<int> local_to_parent;
};
Subgraph induced_subgraph(const TaskGraph& g, const std::vector<int>& vertices,
                          bool unit_weights = false);

}  // namespace topomap::graph
