// Synthetic molecular-dynamics workload — substitute for the paper's LeanMD
// load-database dumps (see DESIGN.md, substitutions).
//
// LeanMD (a Charm++ mini-app in the NAMD family) decomposes space into
// "cells" (patches) holding atoms plus one "pair-compute" object per
// neighbouring cell pair.  Each iteration every cell streams its atom
// coordinates to all its pair objects and receives forces back, so the
// object communication graph is bipartite cell<->pair with bytes
// proportional to the atoms in the contributing cell, and pair compute load
// proportional to the product of the two cells' atom counts.
//
// We generate exactly that object graph.  With a cx*cy*cz cell grid and a
// 26-cell neighbourhood the object count is ~14x the cell count, which at
// the default geometry lands near the paper's 3240+p objects, and the
// virtualisation-ratio effects the paper studies (dense coalesced graphs at
// low p) emerge naturally.
#pragma once

#include "graph/task_graph.hpp"
#include "support/rng.hpp"

namespace topomap::graph {

struct MdParams {
  int cells_x = 8;
  int cells_y = 6;
  int cells_z = 5;
  /// Expected atoms per cell; actual counts are uniform in
  /// [mean*(1-spread), mean*(1+spread)], min 1 — models density variation.
  double atoms_per_cell = 200.0;
  double atom_spread = 0.3;
  /// Bytes per atom per coordinate/force message.
  double bytes_per_atom = 24.0;
  /// Use the full 26-cell neighbourhood (true, LeanMD-like) or only the six
  /// face neighbours (false).
  bool full_neighborhood = true;
  /// Periodic boundary conditions in all three axes.
  bool periodic = true;
  /// Relative compute cost scales.
  double cell_work_per_atom = 1.0;
  double pair_work_per_atom2 = 0.002;
};

/// Build the synthetic MD object graph.  Vertices [0, ncells) are cells
/// (row-major, x fastest); the remainder are pair-compute objects.
TaskGraph synthetic_md(const MdParams& params, Rng& rng);

/// Number of cell vertices a given parameter set produces.
int md_cell_count(const MdParams& params);

}  // namespace topomap::graph
