#include "graph/synthetic_md.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace topomap::graph {

int md_cell_count(const MdParams& p) {
  return p.cells_x * p.cells_y * p.cells_z;
}

TaskGraph synthetic_md(const MdParams& p, Rng& rng) {
  TOPOMAP_REQUIRE(p.cells_x >= 1 && p.cells_y >= 1 && p.cells_z >= 1,
                  "cell grid extents must be positive");
  TOPOMAP_REQUIRE(p.atoms_per_cell >= 1.0, "need at least one atom per cell");
  TOPOMAP_REQUIRE(p.atom_spread >= 0.0 && p.atom_spread < 1.0,
                  "atom_spread must be in [0,1)");

  const int ncells = md_cell_count(p);
  auto cell_id = [&p](int x, int y, int z) {
    return x + p.cells_x * (y + p.cells_y * z);
  };

  // Draw per-cell atom counts.
  std::vector<double> atoms(static_cast<std::size_t>(ncells));
  for (double& a : atoms) {
    const double lo = p.atoms_per_cell * (1.0 - p.atom_spread);
    const double hi = p.atoms_per_cell * (1.0 + p.atom_spread);
    a = std::max(1.0, rng.uniform_double(lo, hi));
  }

  std::ostringstream label;
  label << "md(" << p.cells_x << 'x' << p.cells_y << 'x' << p.cells_z
        << ",atoms=" << p.atoms_per_cell << ')';
  TaskGraph::Builder b(label.str());

  // Cell objects: integration work proportional to atom count.
  for (int c = 0; c < ncells; ++c)
    b.add_vertex(atoms[static_cast<std::size_t>(c)] * p.cell_work_per_atom);

  // Enumerate neighbouring cell pairs once (canonical direction), create a
  // pair object per pair, and wire cell->pair edges.
  auto wrap = [](int v, int extent) { return ((v % extent) + extent) % extent; };
  for (int z = 0; z < p.cells_z; ++z) {
    for (int y = 0; y < p.cells_y; ++y) {
      for (int x = 0; x < p.cells_x; ++x) {
        const int self = cell_id(x, y, z);
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              if (!p.full_neighborhood &&
                  (std::abs(dx) + std::abs(dy) + std::abs(dz) != 1))
                continue;
              int nx = x + dx, ny = y + dy, nz = z + dz;
              if (p.periodic) {
                if (p.cells_x > 2) nx = wrap(nx, p.cells_x);
                if (p.cells_y > 2) ny = wrap(ny, p.cells_y);
                if (p.cells_z > 2) nz = wrap(nz, p.cells_z);
              }
              if (nx < 0 || nx >= p.cells_x || ny < 0 || ny >= p.cells_y ||
                  nz < 0 || nz >= p.cells_z)
                continue;
              const int other = cell_id(nx, ny, nz);
              if (other <= self) continue;  // canonical direction only
              const double wa = atoms[static_cast<std::size_t>(self)];
              const double wb = atoms[static_cast<std::size_t>(other)];
              const int pair =
                  b.add_vertex(wa * wb * p.pair_work_per_atom2);
              // Coordinates out + forces back, both proportional to the
              // contributing cell's atoms.
              b.add_edge(self, pair, 2.0 * wa * p.bytes_per_atom);
              b.add_edge(other, pair, 2.0 * wb * p.bytes_per_atom);
            }
          }
        }
      }
    }
  }
  return std::move(b).build();
}

}  // namespace topomap::graph
