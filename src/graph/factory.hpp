// String-spec task-graph factory (mirror of topo::make_topology), used by
// the CLI tool and benches so workloads can be named on a command line.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/task_graph.hpp"
#include "support/rng.hpp"

namespace topomap::graph {

/// Construct a workload from a spec string:
///   "stencil2d:16x16[:bytes]"     4-point stencil (default 1024 B/edge)
///   "stencil3d:8x8x8[:bytes]"     6-point stencil
///   "ring:64[:bytes]"
///   "complete:16[:bytes]"         all-to-all
///   "transpose:8[:bytes]"         8x8 matrix-transpose exchange (64 tasks)
///   "butterfly:6[:bytes]"         2^6-task hypercube exchange
///   "er:100:0.05[:maxbytes]"      Erdős–Rényi, bytes uniform in [1, max]
///   "rgg:100:0.15[:bytes]"        random geometric, unit square
///   "md:8x6x5[:atoms]"            synthetic MD cell/pair decomposition
/// Randomized families draw from `rng`.  Throws precondition_error on
/// malformed specs.
TaskGraph make_task_graph(const std::string& spec, Rng& rng);

/// Read a task graph from the repository's edge-list format:
///   tasks N
///   a b bytes        (one undirected edge per line; '#' comments)
TaskGraph read_task_graph(std::istream& is, const std::string& label = "file");
TaskGraph read_task_graph_file(const std::string& path);

/// Write the matching edge-list file.
void write_task_graph(std::ostream& os, const TaskGraph& g);

}  // namespace topomap::graph
