#include "graph/builders.hpp"

#include <cmath>
#include <deque>
#include <limits>
#include <sstream>

#include "support/error.hpp"

namespace topomap::graph {

TaskGraph stencil_2d(int nx, int ny, double bytes, bool periodic,
                     double compute_load) {
  TOPOMAP_REQUIRE(nx >= 1 && ny >= 1, "stencil extents must be positive");
  std::ostringstream label;
  label << "stencil2d(" << nx << 'x' << ny << (periodic ? ",periodic" : "")
        << ')';
  const long long nv = static_cast<long long>(nx) * ny;
  TOPOMAP_REQUIRE(nv <= std::numeric_limits<int>::max(),
                  "stencil2d: nx*ny overflows int vertex ids");
  TaskGraph::Builder b(label.str());
  b.add_vertices(static_cast<int>(nv), compute_load);
  // nv fits in int, so every x + nx * y below does too.
  auto id = [nx](int x, int y) { return x + nx * y; };
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      if (x + 1 < nx)
        b.add_edge(id(x, y), id(x + 1, y), bytes);
      else if (periodic && nx > 2)
        b.add_edge(id(x, y), id(0, y), bytes);
      if (y + 1 < ny)
        b.add_edge(id(x, y), id(x, y + 1), bytes);
      else if (periodic && ny > 2)
        b.add_edge(id(x, y), id(x, 0), bytes);
    }
  }
  return std::move(b).build();
}

TaskGraph stencil_3d(int nx, int ny, int nz, double bytes, bool periodic,
                     double compute_load) {
  TOPOMAP_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1,
                  "stencil extents must be positive");
  std::ostringstream label;
  label << "stencil3d(" << nx << 'x' << ny << 'x' << nz
        << (periodic ? ",periodic" : "") << ')';
  const long long nv = static_cast<long long>(nx) * ny * nz;
  TOPOMAP_REQUIRE(nv <= std::numeric_limits<int>::max(),
                  "stencil3d: nx*ny*nz overflows int vertex ids");
  TaskGraph::Builder b(label.str());
  b.add_vertices(static_cast<int>(nv), compute_load);
  // nv fits in int, so x + nx * (y + ny * z) is bounded by nv - 1.
  auto id = [nx, ny](int x, int y, int z) { return x + nx * (y + ny * z); };
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        if (x + 1 < nx)
          b.add_edge(id(x, y, z), id(x + 1, y, z), bytes);
        else if (periodic && nx > 2)
          b.add_edge(id(x, y, z), id(0, y, z), bytes);
        if (y + 1 < ny)
          b.add_edge(id(x, y, z), id(x, y + 1, z), bytes);
        else if (periodic && ny > 2)
          b.add_edge(id(x, y, z), id(x, 0, z), bytes);
        if (z + 1 < nz)
          b.add_edge(id(x, y, z), id(x, y, z + 1), bytes);
        else if (periodic && nz > 2)
          b.add_edge(id(x, y, z), id(x, y, 0), bytes);
      }
    }
  }
  return std::move(b).build();
}

TaskGraph ring(int n, double bytes, double compute_load) {
  TOPOMAP_REQUIRE(n >= 2, "ring needs at least two tasks");
  std::ostringstream label;
  label << "ring(" << n << ')';
  TaskGraph::Builder b(label.str());
  b.add_vertices(n, compute_load);
  for (int i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1, bytes);
  if (n > 2) b.add_edge(n - 1, 0, bytes);
  return std::move(b).build();
}

TaskGraph complete(int n, double bytes, double compute_load) {
  TOPOMAP_REQUIRE(n >= 2, "complete graph needs at least two tasks");
  std::ostringstream label;
  label << "complete(" << n << ')';
  TaskGraph::Builder b(label.str());
  b.add_vertices(n, compute_load);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) b.add_edge(i, j, bytes);
  return std::move(b).build();
}

TaskGraph transpose(int n, double bytes, double compute_load) {
  TOPOMAP_REQUIRE(n >= 2, "transpose needs at least a 2x2 grid");
  std::ostringstream label;
  label << "transpose(" << n << 'x' << n << ')';
  const long long nv = static_cast<long long>(n) * n;
  TOPOMAP_REQUIRE(nv <= std::numeric_limits<int>::max(),
                  "transpose: n*n overflows int vertex ids");
  TaskGraph::Builder b(label.str());
  b.add_vertices(static_cast<int>(nv), compute_load);
  for (int r = 0; r < n; ++r)
    for (int c = r + 1; c < n; ++c)
      b.add_edge(c + n * r, r + n * c, bytes);
  return std::move(b).build();
}

TaskGraph butterfly(int stages, double bytes, double compute_load) {
  TOPOMAP_REQUIRE(stages >= 1 && stages <= 20, "stages out of range");
  const int n = 1 << stages;
  std::ostringstream label;
  label << "butterfly(" << stages << ')';
  TaskGraph::Builder b(label.str());
  b.add_vertices(n, compute_load);
  for (int s = 0; s < stages; ++s)
    for (int i = 0; i < n; ++i)
      if (i < (i ^ (1 << s))) b.add_edge(i, i ^ (1 << s), bytes);
  return std::move(b).build();
}

bool is_connected(const TaskGraph& g) {
  const int n = g.num_vertices();
  if (n <= 1) return true;
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::deque<int> frontier{0};
  seen[0] = 1;
  int count = 1;
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop_front();
    for (const Edge& e : g.edges_of(u)) {
      if (seen[static_cast<std::size_t>(e.neighbor)]) continue;
      seen[static_cast<std::size_t>(e.neighbor)] = 1;
      ++count;
      frontier.push_back(e.neighbor);
    }
  }
  return count == n;
}

TaskGraph random_graph(int n, double p_edge, double min_bytes,
                       double max_bytes, Rng& rng, bool require_connected) {
  TOPOMAP_REQUIRE(n >= 1, "need at least one task");
  TOPOMAP_REQUIRE(p_edge >= 0.0 && p_edge <= 1.0, "edge probability in [0,1]");
  TOPOMAP_REQUIRE(min_bytes > 0.0 && min_bytes <= max_bytes,
                  "bad byte range");
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::ostringstream label;
    label << "er(" << n << ",p=" << p_edge << ')';
    TaskGraph::Builder b(label.str());
    b.add_vertices(n);
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (rng.bernoulli(p_edge))
          b.add_edge(i, j, rng.uniform_double(min_bytes, max_bytes));
    TaskGraph g = std::move(b).build();
    if (!require_connected || is_connected(g)) return g;
  }
  throw precondition_error(
      "random_graph: could not draw a connected graph in 64 attempts; "
      "raise p_edge");
}

TaskGraph random_geometric(int n, double radius, double base_bytes, Rng& rng) {
  TOPOMAP_REQUIRE(n >= 1, "need at least one task");
  TOPOMAP_REQUIRE(radius > 0.0, "radius must be positive");
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<double> xs(static_cast<std::size_t>(n));
    std::vector<double> ys(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      xs[static_cast<std::size_t>(i)] = rng.uniform_double();
      ys[static_cast<std::size_t>(i)] = rng.uniform_double();
    }
    std::ostringstream label;
    label << "rgg(" << n << ",r=" << radius << ')';
    TaskGraph::Builder b(label.str());
    b.add_vertices(n);
    const double r2 = radius * radius;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const double dx = xs[i] - xs[j];
        const double dy = ys[i] - ys[j];
        if (dx * dx + dy * dy <= r2) b.add_edge(i, j, base_bytes);
      }
    }
    TaskGraph g = std::move(b).build();
    if (is_connected(g)) return g;
  }
  throw precondition_error(
      "random_geometric: could not draw a connected graph in 64 attempts; "
      "raise radius");
}

}  // namespace topomap::graph
