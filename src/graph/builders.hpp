// Task-graph generators for the paper's benchmark patterns plus generic
// random families used in property tests.
#pragma once

#include <vector>

#include "graph/task_graph.hpp"
#include "support/rng.hpp"

namespace topomap::graph {

/// 2D Jacobi / 4-point stencil pattern on an nx-by-ny logical grid: each
/// task exchanges `bytes` with each of its (up to) four neighbours per
/// iteration.  `periodic` adds wraparound edges.  Vertex ids are row-major
/// with x fastest (id = x + nx*y), matching TorusMesh::index for (nx,ny).
TaskGraph stencil_2d(int nx, int ny, double bytes, bool periodic = false,
                     double compute_load = 1.0);

/// 3D Jacobi / 6-point stencil on nx-by-ny-by-nz (id = x + nx*(y + ny*z)).
TaskGraph stencil_3d(int nx, int ny, int nz, double bytes,
                     bool periodic = false, double compute_load = 1.0);

/// Bidirectional ring of n tasks.
TaskGraph ring(int n, double bytes, double compute_load = 1.0);

/// Complete graph on n tasks (all-to-all, e.g. dense FFT transpose phase).
TaskGraph complete(int n, double bytes, double compute_load = 1.0);

/// Matrix-transpose exchange on an n-by-n logical grid of tasks
/// (id = col + n*row): task (r, c) exchanges `bytes` with task (c, r).
/// Diagonal tasks have no partner.  A classic adversarial pattern for
/// grid topologies: partners are maximally far apart under naive layouts.
TaskGraph transpose(int n, double bytes, double compute_load = 1.0);

/// Butterfly / hypercube-exchange pattern on n = 2^stages tasks: task i
/// exchanges `bytes` with i XOR 2^s for every stage s (FFT, bitonic sort,
/// recursive-doubling allreduce).
TaskGraph butterfly(int stages, double bytes, double compute_load = 1.0);

/// Erdős–Rényi G(n, p_edge) with edge bytes uniform in [min_bytes,
/// max_bytes] and unit compute load; resamples until connected when
/// `require_connected` (throws after 64 attempts).
TaskGraph random_graph(int n, double p_edge, double min_bytes,
                       double max_bytes, Rng& rng,
                       bool require_connected = true);

/// Random geometric graph: n points uniform in the unit square, edge when
/// distance <= radius, bytes = base_bytes.  Mimics spatial decomposition
/// workloads.  Resamples until connected (throws after 64 attempts).
TaskGraph random_geometric(int n, double radius, double base_bytes, Rng& rng);

/// True if the task graph is connected (isolated vertices count as
/// disconnected unless n <= 1).
bool is_connected(const TaskGraph& g);

}  // namespace topomap::graph
