#include "graph/quotient.hpp"

#include <sstream>

#include "support/error.hpp"

namespace topomap::graph {

TaskGraph quotient_graph(const TaskGraph& g, const std::vector<int>& assignment,
                         int num_groups) {
  TOPOMAP_REQUIRE(static_cast<int>(assignment.size()) == g.num_vertices(),
                  "assignment size mismatch");
  TOPOMAP_REQUIRE(num_groups >= 1, "need at least one group");

  std::ostringstream label;
  label << "quotient(" << g.label() << ",k=" << num_groups << ')';
  TaskGraph::Builder b(label.str());
  b.add_vertices(num_groups, 0.0);

  std::vector<double> group_weight(static_cast<std::size_t>(num_groups), 0.0);
  for (int v = 0; v < g.num_vertices(); ++v) {
    const int grp = assignment[static_cast<std::size_t>(v)];
    TOPOMAP_REQUIRE(grp >= 0 && grp < num_groups, "group id out of range");
    group_weight[static_cast<std::size_t>(grp)] += g.vertex_weight(v);
  }
  for (int grp = 0; grp < num_groups; ++grp)
    b.set_vertex_weight(grp, group_weight[static_cast<std::size_t>(grp)]);

  for (const UndirectedEdge& e : g.edges()) {
    const int ga = assignment[static_cast<std::size_t>(e.a)];
    const int gb = assignment[static_cast<std::size_t>(e.b)];
    if (ga != gb) b.add_edge(ga, gb, e.bytes);
  }
  return std::move(b).build();
}

Subgraph induced_subgraph(const TaskGraph& g, const std::vector<int>& vertices,
                          bool unit_weights) {
  Subgraph out;
  std::vector<int> parent_to_local(static_cast<std::size_t>(g.num_vertices()),
                                   -1);
  TaskGraph::Builder b("sub[" + g.label() + "]");
  for (int v : vertices) {
    TOPOMAP_REQUIRE(v >= 0 && v < g.num_vertices(),
                    "subgraph vertex out of range");
    TOPOMAP_REQUIRE(parent_to_local[static_cast<std::size_t>(v)] == -1,
                    "duplicate vertex in subgraph selection");
    parent_to_local[static_cast<std::size_t>(v)] =
        b.add_vertex(unit_weights ? 1.0 : g.vertex_weight(v));
    out.local_to_parent.push_back(v);
  }
  for (const UndirectedEdge& e : g.edges()) {
    const int la = parent_to_local[static_cast<std::size_t>(e.a)];
    const int lb = parent_to_local[static_cast<std::size_t>(e.b)];
    if (la >= 0 && lb >= 0) b.add_edge(la, lb, e.bytes);
  }
  out.graph = std::move(b).build();
  return out;
}

double average_degree(const TaskGraph& g) {
  if (g.num_vertices() == 0) return 0.0;
  return 2.0 * static_cast<double>(g.num_edges()) /
         static_cast<double>(g.num_vertices());
}

}  // namespace topomap::graph
