#include "graph/task_graph.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace topomap::graph {

void TaskGraph::check_vertex(int v) const {
  TOPOMAP_REQUIRE(v >= 0 && v < num_vertices(), "vertex index out of range");
}

double TaskGraph::vertex_weight(int v) const {
  check_vertex(v);
  return vertex_weight_[static_cast<std::size_t>(v)];
}

double TaskGraph::comm_bytes(int v) const {
  check_vertex(v);
  return comm_bytes_[static_cast<std::size_t>(v)];
}

int TaskGraph::degree(int v) const {
  check_vertex(v);
  return row_offset_[static_cast<std::size_t>(v) + 1] -
         row_offset_[static_cast<std::size_t>(v)];
}

std::span<const Edge> TaskGraph::edges_of(int v) const {
  check_vertex(v);
  const auto begin = static_cast<std::size_t>(row_offset_[v]);
  const auto end = static_cast<std::size_t>(row_offset_[v + 1]);
  return {csr_.data() + begin, end - begin};
}

bool TaskGraph::has_edge(int a, int b) const {
  return edge_bytes(a, b) > 0.0;
}

double TaskGraph::edge_bytes(int a, int b) const {
  check_vertex(a);
  check_vertex(b);
  const auto row = edges_of(a);
  const auto it = std::lower_bound(
      row.begin(), row.end(), b,
      [](const Edge& e, int v) { return e.neighbor < v; });
  return (it != row.end() && it->neighbor == b) ? it->bytes : 0.0;
}

TaskGraph::Builder::Builder(std::string label) : label_(std::move(label)) {}

int TaskGraph::Builder::add_vertex(double weight) {
  TOPOMAP_REQUIRE(weight >= 0.0, "vertex weight must be non-negative");
  weights_.push_back(weight);
  return static_cast<int>(weights_.size()) - 1;
}

int TaskGraph::Builder::add_vertices(int n, double weight) {
  TOPOMAP_REQUIRE(n >= 0, "negative vertex count");
  TOPOMAP_REQUIRE(weight >= 0.0, "vertex weight must be non-negative");
  const int first = static_cast<int>(weights_.size());
  weights_.insert(weights_.end(), static_cast<std::size_t>(n), weight);
  return first;
}

void TaskGraph::Builder::set_vertex_weight(int v, double weight) {
  TOPOMAP_REQUIRE(v >= 0 && v < num_vertices(), "vertex index out of range");
  TOPOMAP_REQUIRE(weight >= 0.0, "vertex weight must be non-negative");
  weights_[static_cast<std::size_t>(v)] = weight;
}

void TaskGraph::Builder::add_edge(int a, int b, double bytes) {
  TOPOMAP_REQUIRE(a >= 0 && a < num_vertices(), "edge endpoint out of range");
  TOPOMAP_REQUIRE(b >= 0 && b < num_vertices(), "edge endpoint out of range");
  TOPOMAP_REQUIRE(a != b, "self-edges carry no hop-bytes; not allowed");
  TOPOMAP_REQUIRE(bytes > 0.0, "edge weight must be positive");
  raw_edges_.push_back({std::min(a, b), std::max(a, b), bytes});
}

TaskGraph TaskGraph::Builder::build() && {
  TaskGraph g;
  g.label_ = std::move(label_);
  g.vertex_weight_ = std::move(weights_);
  const auto n = g.vertex_weight_.size();

  // Merge parallel edges by sorting on (a, b) and accumulating bytes.
  std::sort(raw_edges_.begin(), raw_edges_.end(),
            [](const UndirectedEdge& x, const UndirectedEdge& y) {
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });
  for (const auto& e : raw_edges_) {
    if (!g.edge_list_.empty() && g.edge_list_.back().a == e.a &&
        g.edge_list_.back().b == e.b) {
      g.edge_list_.back().bytes += e.bytes;
    } else {
      g.edge_list_.push_back(e);
    }
  }
  raw_edges_.clear();
  raw_edges_.shrink_to_fit();

  // Build CSR from the merged edge list.
  std::vector<int> degree(n, 0);
  for (const auto& e : g.edge_list_) {
    ++degree[static_cast<std::size_t>(e.a)];
    ++degree[static_cast<std::size_t>(e.b)];
  }
  g.row_offset_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v)
    g.row_offset_[v + 1] = g.row_offset_[v] + degree[v];
  g.csr_.resize(static_cast<std::size_t>(g.row_offset_[n]));
  std::vector<int> cursor(g.row_offset_.begin(), g.row_offset_.end() - 1);
  g.comm_bytes_.assign(n, 0.0);
  for (const auto& e : g.edge_list_) {
    g.csr_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(e.a)]++)] = {e.b, e.bytes};
    g.csr_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(e.b)]++)] = {e.a, e.bytes};
    g.comm_bytes_[static_cast<std::size_t>(e.a)] += e.bytes;
    g.comm_bytes_[static_cast<std::size_t>(e.b)] += e.bytes;
    g.total_comm_bytes_ += e.bytes;
  }
  for (std::size_t v = 0; v < n; ++v) {
    auto* begin = g.csr_.data() + g.row_offset_[v];
    auto* end = g.csr_.data() + g.row_offset_[v + 1];
    std::sort(begin, end,
              [](const Edge& x, const Edge& y) { return x.neighbor < y.neighbor; });
    g.total_vertex_weight_ += g.vertex_weight_[v];
  }
  return g;
}

}  // namespace topomap::graph
