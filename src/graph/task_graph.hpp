// Weighted undirected task graph G_t = (V_t, E_t).
//
// Vertices are compute objects (or groups of objects) with a computation
// weight; edges carry the total bytes communicated between their endpoints
// per iteration (the paper's process model: persistent tasks, symmetric
// stable communication, no DAG dependencies).
//
// The structure is immutable after Builder::build(): adjacency is stored in
// CSR form for cache-friendly traversal in the mapping inner loops, and an
// undirected edge list is kept for whole-graph metrics.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace topomap::graph {

/// One directed half of an undirected communication edge.
struct Edge {
  int neighbor;
  double bytes;
};

/// An undirected communication edge (a < b).
struct UndirectedEdge {
  int a;
  int b;
  double bytes;
};

class TaskGraph {
 public:
  class Builder;

  /// An empty graph (0 vertices); assign a Builder::build() result to fill.
  TaskGraph() = default;

  int num_vertices() const { return static_cast<int>(vertex_weight_.size()); }
  int num_edges() const { return static_cast<int>(edge_list_.size()); }

  /// Compute load of vertex v.
  double vertex_weight(int v) const;

  /// Total bytes vertex v exchanges with all neighbours (sum of incident
  /// edge weights) — the "total communication" used for greedy selection.
  double comm_bytes(int v) const;

  /// Number of incident edges of v.
  int degree(int v) const;

  /// CSR adjacency of v.
  std::span<const Edge> edges_of(int v) const;

  /// All undirected edges, each exactly once.
  const std::vector<UndirectedEdge>& edges() const { return edge_list_; }

  /// Sum of edge weights over undirected edges (total bytes on the wire per
  /// iteration, counting each message once).
  double total_comm_bytes() const { return total_comm_bytes_; }

  /// Sum of vertex weights.
  double total_vertex_weight() const { return total_vertex_weight_; }

  /// True if (a, b) is an edge (binary search over CSR row of a).
  bool has_edge(int a, int b) const;

  /// Bytes on edge (a, b); 0 if absent.
  double edge_bytes(int a, int b) const;

  const std::string& label() const { return label_; }

 private:
  friend class Builder;
  void check_vertex(int v) const;

  std::string label_;
  std::vector<double> vertex_weight_;
  std::vector<double> comm_bytes_;
  std::vector<int> row_offset_;  // size num_vertices()+1
  std::vector<Edge> csr_;        // sorted by neighbor within each row
  std::vector<UndirectedEdge> edge_list_;
  double total_comm_bytes_ = 0.0;
  double total_vertex_weight_ = 0.0;
};

class TaskGraph::Builder {
 public:
  explicit Builder(std::string label = "taskgraph");

  /// Add a vertex with the given compute load; returns its id (sequential).
  int add_vertex(double weight = 1.0);

  /// Reserve `n` unit-weight vertices at once; returns the first id.
  int add_vertices(int n, double weight = 1.0);

  void set_vertex_weight(int v, double weight);

  /// Add (or accumulate onto) the undirected edge (a, b) with `bytes` of
  /// communication.  a == b is rejected: intra-vertex traffic costs no hops.
  void add_edge(int a, int b, double bytes);

  int num_vertices() const { return static_cast<int>(weights_.size()); }

  /// Finalize into an immutable TaskGraph.  Parallel edges added through
  /// add_edge have already been merged by accumulation.
  TaskGraph build() &&;

 private:
  std::string label_;
  std::vector<double> weights_;
  // Edge accumulation keyed by (min,max) endpoint pair.
  std::vector<UndirectedEdge> raw_edges_;
};

}  // namespace topomap::graph
