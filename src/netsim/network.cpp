#include "netsim/network.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "support/error.hpp"

namespace topomap::netsim {

Network::Network(const topo::Topology& topo, NetworkParams params,
                 ServiceModel model, SimulationClient* client)
    : topo_(topo), params_(params), model_(model), client_(client) {
  TOPOMAP_REQUIRE(params_.bandwidth > 0.0, "bandwidth must be positive");
  TOPOMAP_REQUIRE(params_.per_hop_latency_us >= 0.0, "negative hop latency");
  TOPOMAP_REQUIRE(params_.injection_overhead_us >= 0.0,
                  "negative injection overhead");
  TOPOMAP_REQUIRE(params_.packet_bytes > 0.0, "packet size must be positive");

  const int n = topo_.size();
  link_offset_.resize(static_cast<std::size_t>(n) + 1, 0);
  nbr_sorted_.resize(static_cast<std::size_t>(n));
  nbr_slot_.resize(static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u) {
    const std::vector<int> nbrs = topo_.neighbors(u);
    link_offset_[static_cast<std::size_t>(u) + 1] =
        link_offset_[static_cast<std::size_t>(u)] +
        static_cast<int>(nbrs.size());
    // Sorted copy with original slot numbers for O(log deg) lookup.
    std::vector<std::pair<int, int>> order;
    order.reserve(nbrs.size());
    for (std::size_t slot = 0; slot < nbrs.size(); ++slot)
      order.emplace_back(nbrs[slot], static_cast<int>(slot));
    std::sort(order.begin(), order.end());
    for (const auto& [nbr, slot] : order) {
      nbr_sorted_[static_cast<std::size_t>(u)].push_back(nbr);
      nbr_slot_[static_cast<std::size_t>(u)].push_back(slot);
    }
  }
  // Link id = link_offset_[u] + original neighbour slot.
  neighbor_of_link_.assign(
      static_cast<std::size_t>(link_offset_[static_cast<std::size_t>(n)]), -1);
  node_of_link_.assign(neighbor_of_link_.size(), -1);
  for (int u = 0; u < n; ++u) {
    const auto& sorted = nbr_sorted_[static_cast<std::size_t>(u)];
    const auto& slots = nbr_slot_[static_cast<std::size_t>(u)];
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      const auto link = static_cast<std::size_t>(
          link_offset_[static_cast<std::size_t>(u)] + slots[i]);
      neighbor_of_link_[link] = sorted[i];
      node_of_link_[link] = u;
    }
  }
  link_free_.assign(neighbor_of_link_.size(), 0.0);
  link_busy_.assign(neighbor_of_link_.size(), 0.0);
  link_bytes_.assign(neighbor_of_link_.size(), 0.0);
  link_slowdown_.assign(neighbor_of_link_.size(), 1.0);
  // Service rates come from the topology's own link health: a machine
  // described by a soft-faulted topo::FaultOverlay serialises messages
  // proportionally slower on its degraded links, with no separate
  // degrade_link() bookkeeping to keep in sync with the mapping distances.
  // Links in neighbors() are alive by construction, so health is in (0, 1].
  for (int u = 0; u < n; ++u) {
    for (int v : topo_.neighbors(u)) {
      const double health = topo_.link_health(u, v);
      TOPOMAP_ASSERT(health > 0.0 && health <= 1.0,
                     "alive link reports health outside (0, 1]");
      if (health < 1.0)
        link_slowdown_[static_cast<std::size_t>(link_id(u, v))] = 1.0 / health;
    }
  }
}

void Network::degrade_link(int from, int to, double factor) {
  TOPOMAP_REQUIRE(factor > 0.0 && factor <= 1.0,
                  "degradation factor must be in (0, 1]");
  link_slowdown_[static_cast<std::size_t>(link_id(from, to))] = 1.0 / factor;
}

int Network::link_id(int from, int to) const {
  const auto& sorted = nbr_sorted_[static_cast<std::size_t>(from)];
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), to);
  TOPOMAP_ASSERT(it != sorted.end() && *it == to,
                 "route step is not a physical link");
  const auto idx = static_cast<std::size_t>(it - sorted.begin());
  return link_offset_[static_cast<std::size_t>(from)] +
         nbr_slot_[static_cast<std::size_t>(from)][idx];
}

void Network::inject(SimTime now, int src_node, int dst_node, double bytes,
                     std::uint64_t tag) {
  TOPOMAP_REQUIRE(now + 1e-9 >= now_, "injection in the simulated past");
  TOPOMAP_REQUIRE(bytes > 0.0, "message must carry bytes");

  MessageState state;
  state.msg = Message{src_node, dst_node, bytes, tag, now, 0.0};
  state.route_hops = topo_.distance(src_node, dst_node);
  const bool adaptive = params_.routing == RoutingPolicy::kMinimalAdaptive;
  if (src_node != dst_node && !adaptive) {
    const std::vector<int> path = topo_.route(src_node, dst_node);
    state.links.reserve(path.size() - 1);
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
      state.links.push_back(link_id(path[i], path[i + 1]));
  }
  if (model_ == ServiceModel::kStoreForward && state.route_hops > 0) {
    state.packets = static_cast<std::uint32_t>(
        std::ceil(bytes / params_.packet_bytes));
  }
  if (src_node != dst_node && adaptive) {
    // Track the current position of the head (wormhole) / each packet.
    state.packet_node.assign(
        model_ == ServiceModel::kStoreForward ? state.packets : 1, src_node);
  }

  // Recycle a finished slot if available (keeps memory bounded by the
  // number of in-flight messages, not total messages).
  std::uint64_t id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
    messages_[static_cast<std::size_t>(id)] = std::move(state);
  } else {
    id = messages_.size();
    messages_.push_back(std::move(state));
  }

  const SimTime start = now + params_.injection_overhead_us;
  if (messages_[static_cast<std::size_t>(id)].route_hops == 0) {
    queue_.push(start, Event::Kind::kDelivery, id);
  } else if (model_ == ServiceModel::kWormhole) {
    queue_.push(start, Event::Kind::kHop, id, 0, 0);
  } else {
    const std::uint32_t packets = messages_[static_cast<std::size_t>(id)].packets;
    for (std::uint32_t pkt = 0; pkt < packets; ++pkt)
      queue_.push(start, Event::Kind::kHop, id, 0, pkt);
  }
}

void Network::schedule_app(SimTime time, std::uint64_t payload) {
  TOPOMAP_REQUIRE(time + 1e-9 >= now_, "app event in the simulated past");
  queue_.push(time, Event::Kind::kApp, payload);
}

void Network::set_telemetry(const TelemetrySpec& spec) {
  TOPOMAP_REQUIRE(spec.sample_interval_us > 0.0,
                  "telemetry sample interval must be positive");
  TOPOMAP_REQUIRE(
      spec.saturation_threshold > 0.0 && spec.saturation_threshold <= 1.0,
      "saturation threshold must be in (0, 1]");
  telemetry_on_ = true;
  telemetry_ = spec;
  bin_busy_us_.assign(link_free_.size(), {});
}

void Network::bin_busy(int link, SimTime start, SimTime duration) {
  // Split [start, start+duration) across the fixed sampling windows.  One
  // FIFO link's reservations never overlap, so summing the pieces per
  // window gives its exact busy time there.
  auto& bins = bin_busy_us_[static_cast<std::size_t>(link)];
  const double w = telemetry_.sample_interval_us;
  SimTime t = start;
  double remaining = duration;
  while (remaining > 0.0) {
    const auto bin = static_cast<std::size_t>(t / w);
    if (bins.size() <= bin) bins.resize(bin + 1, 0.0);
    const double take = std::min(remaining, (static_cast<double>(bin) + 1.0) * w - t);
    if (take <= 0.0) break;  // FP guard at a window boundary
    bins[bin] += take;
    t += take;
    remaining -= take;
  }
}

SimTime Network::reserve(int link, SimTime earliest, SimTime duration,
                         double bytes) {
  const auto idx = static_cast<std::size_t>(link);
  const SimTime start = std::max(earliest, link_free_[idx]);
  link_free_[idx] = start + duration;
  link_busy_[idx] += duration;
  link_bytes_[idx] += bytes;
  if (telemetry_on_) bin_busy(link, start, duration);
  return start;
}

int Network::pick_adaptive_link(int cur, int dst) const {
  const int cur_dist = topo_.distance(cur, dst);
  const auto& sorted = nbr_sorted_[static_cast<std::size_t>(cur)];
  const auto& slots = nbr_slot_[static_cast<std::size_t>(cur)];
  int best_link = -1;
  SimTime best_free = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // A neighbour is on a minimal path iff crossing its link pays for the
    // full distance reduction — cost 1 on hop metrics, the health-weighted
    // fixed-point cost on a degraded overlay.
    if (topo_.distance(sorted[i], dst) !=
        cur_dist - topo_.link_cost(cur, sorted[i]))
      continue;
    const int link = link_offset_[static_cast<std::size_t>(cur)] + slots[i];
    const SimTime free = link_free_[static_cast<std::size_t>(link)];
    if (best_link < 0 || free < best_free) {  // ties: lowest neighbour id
      best_link = link;
      best_free = free;
    }
  }
  TOPOMAP_ASSERT(best_link >= 0,
                 "no minimal next hop: topology distances are inconsistent "
                 "with its neighbour graph (e.g. FatTree)");
  return best_link;
}

void Network::handle_hop(const Event& e) {
  MessageState& state = messages_[static_cast<std::size_t>(e.id)];
  const bool adaptive = params_.routing == RoutingPolicy::kMinimalAdaptive;

  // Resolve the outgoing link and whether it lands at the destination.
  int link = -1;
  bool last_hop = false;
  int next_node = -1;
  if (adaptive) {
    const std::size_t pos_idx =
        model_ == ServiceModel::kStoreForward ? e.sub : 0;
    const int cur = state.packet_node[pos_idx];
    link = pick_adaptive_link(cur, state.msg.dst_node);
    next_node = neighbor_of_link_[static_cast<std::size_t>(link)];
    state.packet_node[pos_idx] = next_node;
    last_hop = (next_node == state.msg.dst_node);
  } else {
    link = state.links[e.hop];
    last_hop = (e.hop + 1 == state.links.size());
  }

  const double slowdown = link_slowdown_[static_cast<std::size_t>(link)];
  if (model_ == ServiceModel::kWormhole) {
    const double serialization =
        state.msg.bytes / params_.bandwidth * slowdown;
    const SimTime start = reserve(link, e.time, serialization, state.msg.bytes);
    const SimTime head_next = start + params_.per_hop_latency_us;
    if (!last_hop) {
      queue_.push(head_next, Event::Kind::kHop, e.id, e.hop + 1, 0);
    } else {
      // Tail arrives one full serialisation after the head.
      queue_.push(head_next + serialization, Event::Kind::kDelivery, e.id);
    }
    return;
  }

  // Store-and-forward: this packet fully traverses the link, then forwards.
  const double full = params_.packet_bytes;
  const double last_pkt_bytes =
      state.msg.bytes - full * static_cast<double>(state.packets - 1);
  const double pkt_bytes = (e.sub + 1 == state.packets) ? last_pkt_bytes : full;
  const double serialization = pkt_bytes / params_.bandwidth * slowdown;
  const SimTime start = reserve(link, e.time, serialization, pkt_bytes);
  const SimTime arrival = start + serialization + params_.per_hop_latency_us;
  if (!last_hop) {
    queue_.push(arrival, Event::Kind::kHop, e.id, e.hop + 1, e.sub);
  } else {
    ++state.packets_arrived;
    if (state.packets_arrived == state.packets)
      queue_.push(arrival, Event::Kind::kDelivery, e.id);
  }
}

void Network::deliver(SimTime time, std::uint64_t id) {
  MessageState& state = messages_[static_cast<std::size_t>(id)];
  state.msg.deliver_time = time;
  ++delivered_;
  latency_.add(time - state.msg.inject_time);
  hops_.add(static_cast<double>(state.route_hops));
  const Message msg = state.msg;  // copy before the slot is recycled
  free_slots_.push_back(id);
  if (client_ != nullptr) client_->on_delivery(time, msg);
}

SimTime Network::run_until_idle() {
  OBS_SPAN("netsim/run_until_idle");
  OBS_ONLY(std::uint64_t obs_events = 0; std::size_t obs_depth_max = 0;)
  while (!queue_.empty()) {
    OBS_ONLY(if (::topomap::obs::enabled()) {
      ++obs_events;
      obs_depth_max = std::max(obs_depth_max, queue_.size());
    })
    const Event e = queue_.pop();
    TOPOMAP_ASSERT(e.time + 1e-9 >= now_, "event time went backwards");
    now_ = std::max(now_, e.time);
    if (telemetry_on_) {
      // Per-window maximum of the event-queue depth, observed as events
      // are processed (the queue is the simulator's in-flight backlog).
      const auto bin = static_cast<std::size_t>(
          now_ / telemetry_.sample_interval_us);
      if (bin_queue_max_.size() <= bin) bin_queue_max_.resize(bin + 1, 0.0);
      bin_queue_max_[bin] =
          std::max(bin_queue_max_[bin], static_cast<double>(queue_.size()));
    }
    switch (e.kind) {
      case Event::Kind::kHop:
        handle_hop(e);
        break;
      case Event::Kind::kDelivery:
        deliver(e.time, e.id);
        break;
      case Event::Kind::kApp:
        if (client_ != nullptr) client_->on_app_event(e.time, e.id);
        break;
    }
  }
  OBS_ONLY(if (obs_events > 0) {
    OBS_COUNTER_ADD("netsim/events", obs_events);
    OBS_VALUE("netsim/queue_depth_max", obs_depth_max);
    OBS_VALUE("netsim/link_busy_us_max", max_link_busy_us());
    OBS_VALUE("netsim/link_busy_us_mean", mean_link_busy_us());
  })
  if (telemetry_on_ && obs::enabled()) publish_telemetry();
  return now_;
}

TelemetrySnapshot Network::telemetry_snapshot() const {
  TelemetrySnapshot snap;
  if (!telemetry_on_) return snap;
  const double w = telemetry_.sample_interval_us;
  snap.sample_interval_us = w;

  std::size_t windows = bin_queue_max_.size();
  for (const auto& bins : bin_busy_us_) windows = std::max(windows, bins.size());
  snap.t_us.reserve(windows);
  snap.util_max.reserve(windows);
  snap.queue_depth.reserve(windows);
  for (std::size_t b = 0; b < windows; ++b) {
    double util = 0.0;
    for (const auto& bins : bin_busy_us_)
      if (b < bins.size()) util = std::max(util, bins[b] / w);
    snap.t_us.push_back((static_cast<double>(b) + 1.0) * w);
    snap.util_max.push_back(util);
    snap.queue_depth.push_back(b < bin_queue_max_.size() ? bin_queue_max_[b]
                                                         : 0.0);
  }

  for (std::size_t l = 0; l < link_bytes_.size(); ++l) {
    if (link_bytes_[l] <= 0.0) continue;
    LinkTelemetry lt;
    lt.from = node_of_link_[l];
    lt.to = neighbor_of_link_[l];
    lt.bytes = link_bytes_[l];
    lt.busy_us = link_busy_[l];
    const auto& bins = bin_busy_us_[l];
    for (std::size_t b = 0; b < bins.size(); ++b) {
      const double util = bins[b] / w;
      if (util > lt.peak_util) {
        lt.peak_util = util;
        lt.time_to_peak_us = (static_cast<double>(b) + 1.0) * w;
      }
      if (util >= telemetry_.saturation_threshold) lt.saturated_us += w;
    }
    snap.links.push_back(lt);
  }
  std::sort(snap.links.begin(), snap.links.end(),
            [](const LinkTelemetry& x, const LinkTelemetry& y) {
              if (x.bytes != y.bytes) return x.bytes > y.bytes;
              if (x.from != y.from) return x.from < y.from;
              return x.to < y.to;
            });
  return snap;
}

std::vector<LinkFlow> Network::link_flows() const {
  std::vector<LinkFlow> flows;
  for (std::size_t l = 0; l < link_bytes_.size(); ++l)
    if (link_bytes_[l] > 0.0)
      flows.push_back(LinkFlow{node_of_link_[l], neighbor_of_link_[l],
                               link_bytes_[l], link_busy_[l]});
  std::sort(flows.begin(), flows.end(),
            [](const LinkFlow& x, const LinkFlow& y) {
              if (x.from != y.from) return x.from < y.from;
              return x.to < y.to;
            });
  return flows;
}

void Network::publish_telemetry() const {
  const TelemetrySnapshot snap = telemetry_snapshot();
  obs::Registry& reg = obs::Registry::instance();
  obs::Tracer& tracer = obs::Tracer::instance();
  for (std::size_t b = 0; b < snap.t_us.size(); ++b) {
    reg.append_series("netsim/util_max", snap.util_max[b]);
    reg.append_series("netsim/queue_depth", snap.queue_depth[b]);
    tracer.record_counter("netsim/util_max", snap.t_us[b], snap.util_max[b]);
    tracer.record_counter("netsim/queue_depth", snap.t_us[b],
                          snap.queue_depth[b]);
  }
  for (const LinkTelemetry& lt : snap.links) {
    reg.record("netsim/link_peak_util", lt.peak_util);
    reg.record("netsim/link_time_to_peak_us", lt.time_to_peak_us);
    reg.record("netsim/link_saturated_us", lt.saturated_us);
  }
}

double Network::max_link_busy_us() const {
  double mx = 0.0;
  for (double b : link_busy_) mx = std::max(mx, b);
  return mx;
}

double Network::mean_link_busy_us() const {
  if (link_busy_.empty()) return 0.0;
  double total = 0.0;
  for (double b : link_busy_) total += b;
  return total / static_cast<double>(link_busy_.size());
}

}  // namespace topomap::netsim
