// Contention-modelling interconnect simulator (DESIGN.md S5).
//
// Substitutes for the paper's BigNetSim runs and BlueGene measurements.
// Messages travel the deterministic Topology::route() between processors;
// every traversed link is exclusively occupied for bytes/bandwidth time, so
// per-link load — which hop-bytes approximates — directly produces queuing
// delay and the congestion behaviour of §5.3.
//
// Two service models:
//
//  * kWormhole (default) — virtual cut-through at message granularity: the
//    head advances one per_hop_latency per switch and reserves each link
//    for the full message serialisation time; the tail arrives one
//    serialisation after the head.  No-load latency =
//    hops * per_hop_latency + bytes / bandwidth.  Cheap (O(hops) events
//    per message), matches BlueGene-class wormhole networks.
//  * kStoreForward — packetised store-and-forward: the message splits into
//    MTU-sized packets, each fully received before forwarding.  No-load
//    latency = hops * (pkt/bw + per_hop_latency) + (npkts-1) * pkt/bw.
//    Finer-grained link sharing; O(hops * packets) events.
//
// Buffers are unbounded (the paper speaks of messages "stranded in the
// buffers at the switches"); links are FIFO.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netsim/event_queue.hpp"
#include "support/stats.hpp"
#include "topo/topology.hpp"

namespace topomap::netsim {

/// How each message/packet picks its next hop.
enum class RoutingPolicy {
  /// Follow Topology::route() — deterministic dimension-ordered routing on
  /// grids.  Oblivious to load; what BlueGene's deterministic mode and our
  /// hop-byte link accounting assume.
  kDeterministic,
  /// Minimal adaptive: at every switch, choose — among the neighbours that
  /// strictly reduce the distance to the destination — the output link
  /// that frees earliest (ties: lowest neighbour id).  Spreads contention
  /// across equivalent minimal paths like BlueGene's adaptive mode.
  /// Requires the topology's distances to be consistent with its
  /// neighbour graph (true for all shipped topologies except FatTree).
  kMinimalAdaptive,
};

struct NetworkParams {
  /// Link bandwidth in bytes per microsecond (== MB/s).
  double bandwidth = 1000.0;
  /// Switch/wire delay per hop for the head, in microseconds.
  double per_hop_latency_us = 0.1;
  /// Fixed software/NIC overhead added at injection, in microseconds.
  double injection_overhead_us = 0.5;
  /// MTU for the store-and-forward model, in bytes.
  double packet_bytes = 256.0;
  RoutingPolicy routing = RoutingPolicy::kDeterministic;
};

enum class ServiceModel { kWormhole, kStoreForward };

/// Configuration for time-resolved telemetry (set_telemetry).  Sampling
/// works on a fixed *virtual-time* grid: link busy time is binned into
/// consecutive sample_interval_us windows as reservations are made, so a
/// window's per-link utilization is exact (reservations on one FIFO link
/// never overlap), not an end-of-run average.
struct TelemetrySpec {
  double sample_interval_us = 100.0;
  /// A window with utilization >= this counts toward a link's saturation
  /// duration.
  double saturation_threshold = 0.95;
};

/// Time-resolved per-link summary, derived from the sampling grid.
struct LinkTelemetry {
  int from = 0;
  int to = 0;
  double bytes = 0.0;            ///< payload bytes pushed over the link
  double busy_us = 0.0;          ///< total busy (serialisation) time
  double peak_util = 0.0;        ///< hottest sampling window's utilization
  double time_to_peak_us = 0.0;  ///< end of the first window hitting peak
  double saturated_us = 0.0;     ///< time spent in windows above threshold
};

/// One payload-byte flow summary per link (always recorded, no telemetry
/// needed): what the simulator *actually* pushed, for cross-checking
/// against core::link_loads' routed predictions.
struct LinkFlow {
  int from = 0;
  int to = 0;
  double bytes = 0.0;
  double busy_us = 0.0;
};

/// Everything the sampling grid produced: parallel per-window arrays (the
/// busiest-link timeline) plus the per-link summaries, links with traffic
/// only, sorted by descending bytes (ties: ascending (from, to)).
struct TelemetrySnapshot {
  double sample_interval_us = 0.0;
  std::vector<double> t_us;         ///< window end times, ascending
  std::vector<double> util_max;     ///< busiest link's utilization per window
  std::vector<double> queue_depth;  ///< max event-queue depth per window
  std::vector<LinkTelemetry> links;
};

struct Message {
  int src_node = 0;
  int dst_node = 0;
  double bytes = 0.0;
  std::uint64_t tag = 0;     ///< opaque application tag
  SimTime inject_time = 0.0;
  SimTime deliver_time = 0.0;
};

/// Receives message deliveries and application events from the simulator.
class SimulationClient {
 public:
  virtual ~SimulationClient() = default;
  virtual void on_delivery(SimTime now, const Message& msg) = 0;
  virtual void on_app_event(SimTime now, std::uint64_t payload) = 0;
};

class Network {
 public:
  /// @param topo    routed topology (must support route()); kept alive by
  ///                the caller for the simulator's lifetime
  /// @param client  may be null when only aggregate stats are wanted
  Network(const topo::Topology& topo, NetworkParams params,
          ServiceModel model, SimulationClient* client);

  /// Inject a message at `now` (>= current simulation time).  Zero-hop
  /// (src == dst) messages deliver after the injection overhead only.
  void inject(SimTime now, int src_node, int dst_node, double bytes,
              std::uint64_t tag);

  /// Failure/degradation injection: scale the directed link from -> to
  /// down to `factor` of nominal bandwidth (0 < factor <= 1).  Models a
  /// flaky cable or a congested adaptive route; messages crossing the link
  /// serialise proportionally slower.  Must be called before the affected
  /// traffic is injected.
  ///
  /// The canonical degradation path is the topology itself: a Network built
  /// over a soft-faulted topo::FaultOverlay seeds every link's slowdown
  /// from Topology::link_health at construction, so the simulator, the
  /// routes, and the mapping distances all describe one machine.  This
  /// method remains for ad-hoc single-link experiments and overrides the
  /// seeded value.
  void degrade_link(int from, int to, double factor);

  /// Schedule an application callback (client->on_app_event).
  void schedule_app(SimTime time, std::uint64_t payload);

  /// Switch on time-resolved telemetry (before any traffic is injected).
  /// Purely observational: event order, reservations, and every statistic
  /// above are identical with telemetry on or off.  When obs recording is
  /// also on (obs::enabled()), run_until_idle() publishes the busiest-link
  /// and queue-depth timelines as obs::Registry series
  /// ("netsim/util_max", "netsim/queue_depth") and obs::Tracer counter
  /// tracks, so --trace renders them in Perfetto next to the phase spans.
  void set_telemetry(const TelemetrySpec& spec);

  /// The sampling grid's product (empty snapshot when telemetry was never
  /// enabled).  Call after run_until_idle().
  TelemetrySnapshot telemetry_snapshot() const;

  /// Payload bytes actually pushed over each link (links with traffic
  /// only, ascending (from, to)).  Always tracked — no telemetry needed.
  std::vector<LinkFlow> link_flows() const;

  /// Process events until the queue drains; returns the time of the last
  /// processed event (the completion time).
  SimTime run_until_idle();

  bool idle() const { return queue_.empty(); }
  SimTime now() const { return now_; }

  // --- statistics over all delivered messages ---
  std::uint64_t messages_delivered() const { return delivered_; }
  /// Latency samples (deliver - inject) in us.
  SampleStats& latency_stats() { return latency_; }
  /// Hops travelled per delivered message.
  RunningStats& hop_stats() { return hops_; }
  /// Busiest link's total busy time in us.
  double max_link_busy_us() const;
  /// Mean link utilisation over [0, run_until_idle() time].
  double mean_link_busy_us() const;
  int link_count() const { return static_cast<int>(link_free_.size()); }

  const NetworkParams& params() const { return params_; }

 private:
  struct MessageState {
    Message msg;
    std::vector<int> links;       ///< deterministic: link ids along route
    std::vector<int> packet_node; ///< adaptive: current node per packet
    int route_hops = 0;           ///< minimal distance src -> dst
    std::uint32_t packets = 1;
    std::uint32_t packets_arrived = 0;
  };

  int link_id(int from, int to) const;
  void handle_hop(const Event& e);
  void deliver(SimTime time, std::uint64_t id);
  /// Reserve `link` for `duration` starting no earlier than `earliest`;
  /// returns the actual start time.  `bytes` is the payload crossing the
  /// link during this reservation (serialisation accounting).
  SimTime reserve(int link, SimTime earliest, SimTime duration, double bytes);
  /// Bin a reservation's busy time onto the telemetry sampling grid.
  void bin_busy(int link, SimTime start, SimTime duration);
  /// Publish the snapshot's series into obs:: (registry + tracer counters).
  void publish_telemetry() const;
  /// Adaptive next hop out of `cur` toward `dst`: the minimal-direction
  /// link that frees earliest.  Returns the link id; throws if no
  /// neighbour reduces the distance (inconsistent topology).
  int pick_adaptive_link(int cur, int dst) const;

  const topo::Topology& topo_;
  NetworkParams params_;
  ServiceModel model_;
  SimulationClient* client_;

  EventQueue queue_;
  SimTime now_ = 0.0;

  // Link bookkeeping: links are indexed per (node, neighbor-slot).
  std::vector<int> link_offset_;            // per node, into link arrays
  std::vector<int> neighbor_of_link_;       // link id -> destination node
  std::vector<std::vector<int>> nbr_sorted_;// per node: sorted neighbors
  std::vector<std::vector<int>> nbr_slot_;  // matching link slot per entry
  std::vector<SimTime> link_free_;          // next time each link is free
  std::vector<double> link_busy_;           // accumulated busy time
  std::vector<double> link_bytes_;          // accumulated payload bytes
  std::vector<double> link_slowdown_;       // serialisation multiplier (>= 1)
  std::vector<int> node_of_link_;           // link id -> source node

  // Time-resolved telemetry (inert unless set_telemetry() was called).
  bool telemetry_on_ = false;
  TelemetrySpec telemetry_;
  std::vector<std::vector<double>> bin_busy_us_;  // [link][window]
  std::vector<double> bin_queue_max_;             // [window]

  std::vector<MessageState> messages_;
  std::vector<std::uint64_t> free_slots_;  ///< recycled MessageState slots
  std::uint64_t delivered_ = 0;
  SampleStats latency_;
  RunningStats hops_;
};

}  // namespace topomap::netsim
