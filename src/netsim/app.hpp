// Iterative (Jacobi-like) application driver on top of the network
// simulator — the analogue of the paper's trace-driven BigNetSim runs.
//
// The communication pattern is a task graph placed on the machine by a
// one-to-one mapping.  Each task repeats, for a fixed iteration count:
//
//   wait for all neighbour messages of the previous iteration
//   -> compute for compute_us
//   -> send e.bytes/2 to every neighbour (each undirected task-graph edge
//      carries e.bytes per iteration, half in each direction)
//
// so the per-iteration network load equals the task graph's byte totals and
// per-link load tracks hop-bytes exactly.  Message sends at a node are
// serialised by the injection overhead (one NIC per node).
#pragma once

#include "core/mapping.hpp"
#include "graph/task_graph.hpp"
#include "netsim/network.hpp"
#include "topo/topology.hpp"

namespace topomap::netsim {

struct AppParams {
  int iterations = 100;
  /// Base compute time per task per iteration, microseconds.
  double compute_us = 10.0;
  /// When true, a task's compute time is compute_us * vertex_weight.
  bool scale_compute_by_weight = false;
  /// Switch on the network's time-resolved telemetry (AppResult::telemetry).
  bool telemetry = false;
  TelemetrySpec telemetry_spec;
};

/// A degraded physical link for failure-injection runs.
struct DegradedLink {
  int from = 0;
  int to = 0;
  double factor = 1.0;  ///< remaining fraction of nominal bandwidth
};

struct AppResult {
  SimTime completion_us = 0.0;          ///< all iterations finished
  double avg_message_latency_us = 0.0;
  double p99_message_latency_us = 0.0;
  double max_message_latency_us = 0.0;
  std::uint64_t messages = 0;
  double mean_hops = 0.0;               ///< observed hops per message
  double max_link_busy_us = 0.0;        ///< busiest-link occupancy
  double mean_link_busy_us = 0.0;
  /// iteration_complete_us[k]: when the last task finished computing (and
  /// handed its messages to the NIC for) iteration k.  Non-decreasing;
  /// useful for spotting congestion-induced slowdown over time.
  std::vector<double> iteration_complete_us;
  /// Payload bytes the simulator pushed over each link (always recorded).
  std::vector<LinkFlow> link_flows;
  /// Time-resolved sampling product; empty unless AppParams::telemetry.
  TelemetrySnapshot telemetry;
};

/// Simulate the iterative application.  Requires a one-to-one mapping.
/// `degraded` links (if any) run at a fraction of nominal bandwidth.
AppResult run_iterative_app(const graph::TaskGraph& g,
                            const topo::Topology& topo,
                            const core::Mapping& mapping,
                            const AppParams& app, const NetworkParams& net,
                            ServiceModel model = ServiceModel::kWormhole,
                            const std::vector<DegradedLink>& degraded = {});

}  // namespace topomap::netsim
