#include "netsim/app.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace topomap::netsim {

namespace {

/// Event-driven BSP engine: one instance per simulation run.
class IterativeApp final : public SimulationClient {
 public:
  IterativeApp(const graph::TaskGraph& g, const topo::Topology& topo,
               const core::Mapping& mapping, const AppParams& app,
               const NetworkParams& net, ServiceModel model)
      : g_(g),
        mapping_(mapping),
        app_(app),
        net_(topo, net, model, this),
        task_of_proc_(core::inverse_mapping(mapping, topo)) {
    TOPOMAP_REQUIRE(app.iterations >= 1, "need at least one iteration");
    TOPOMAP_REQUIRE(app.compute_us >= 0.0, "negative compute time");
    const auto n = static_cast<std::size_t>(g.num_vertices());
    done_iters_.assign(n, 0);
    computing_.assign(n, 0);
    nic_free_.assign(n, 0.0);
    recv_count_.assign(n * static_cast<std::size_t>(app.iterations), 0);
    iter_complete_.assign(static_cast<std::size_t>(app.iterations), 0.0);
    iter_remaining_.assign(static_cast<std::size_t>(app.iterations),
                           g.num_vertices());
    if (app.telemetry) net_.set_telemetry(app.telemetry_spec);
  }

  void degrade(const std::vector<DegradedLink>& degraded) {
    for (const DegradedLink& d : degraded)
      net_.degrade_link(d.from, d.to, d.factor);
  }

  AppResult run() {
    for (int t = 0; t < g_.num_vertices(); ++t) try_start(0.0, t);
    AppResult result;
    result.completion_us = net_.run_until_idle();
    result.messages = net_.messages_delivered();
    if (result.messages > 0) {
      result.avg_message_latency_us = net_.latency_stats().mean();
      result.p99_message_latency_us = net_.latency_stats().percentile(0.99);
      result.max_message_latency_us = net_.latency_stats().max();
      result.mean_hops = net_.hop_stats().mean();
    }
    result.max_link_busy_us = net_.max_link_busy_us();
    result.mean_link_busy_us = net_.mean_link_busy_us();
    result.iteration_complete_us = iter_complete_;
    result.link_flows = net_.link_flows();
    if (app_.telemetry) result.telemetry = net_.telemetry_snapshot();
    for (int remaining : iter_remaining_)
      TOPOMAP_ASSERT(remaining == 0, "iteration left unfinished tasks");
    // Every task must have finished every iteration, and nothing may be in
    // flight — conservation check on the whole pipeline.
    for (int t = 0; t < g_.num_vertices(); ++t)
      TOPOMAP_ASSERT(done_iters_[static_cast<std::size_t>(t)] ==
                         app_.iterations,
                     "task did not finish all iterations (deadlock?)");
    return result;
  }

  void on_delivery(SimTime now, const Message& msg) override {
    const int task = task_of_proc_[static_cast<std::size_t>(msg.dst_node)];
    const auto iter = static_cast<int>(msg.tag);
    ++recv_count_[static_cast<std::size_t>(task) *
                      static_cast<std::size_t>(app_.iterations) +
                  static_cast<std::size_t>(iter)];
    try_start(now, task);
  }

  void on_app_event(SimTime now, std::uint64_t payload) override {
    // Compute finished for `payload`: emit this iteration's messages.
    const int task = static_cast<int>(payload);
    const int iter = done_iters_[static_cast<std::size_t>(task)];
    const int src_node = mapping_[static_cast<std::size_t>(task)];
    SimTime& nic = nic_free_[static_cast<std::size_t>(task)];
    nic = std::max(nic, now);
    for (const graph::Edge& e : g_.edges_of(task)) {
      const int dst_node = mapping_[static_cast<std::size_t>(e.neighbor)];
      net_.inject(nic, src_node, dst_node, e.bytes / 2.0,
                  static_cast<std::uint64_t>(iter));
      nic += net_.params().injection_overhead_us;  // serialise the NIC
    }
    computing_[static_cast<std::size_t>(task)] = 0;
    ++done_iters_[static_cast<std::size_t>(task)];
    iter_complete_[static_cast<std::size_t>(iter)] =
        std::max(iter_complete_[static_cast<std::size_t>(iter)], now);
    --iter_remaining_[static_cast<std::size_t>(iter)];
    try_start(now, task);
  }

 private:
  double compute_time(int task) const {
    return app_.scale_compute_by_weight
               ? app_.compute_us * g_.vertex_weight(task)
               : app_.compute_us;
  }

  /// Start the next compute phase of `task` if its dependencies are met.
  void try_start(SimTime now, int task) {
    if (computing_[static_cast<std::size_t>(task)]) return;
    const int iter = done_iters_[static_cast<std::size_t>(task)];
    if (iter >= app_.iterations) return;
    if (iter > 0) {
      const int have =
          recv_count_[static_cast<std::size_t>(task) *
                          static_cast<std::size_t>(app_.iterations) +
                      static_cast<std::size_t>(iter - 1)];
      if (have < g_.degree(task)) return;
    }
    computing_[static_cast<std::size_t>(task)] = 1;
    net_.schedule_app(now + compute_time(task),
                      static_cast<std::uint64_t>(task));
  }

  const graph::TaskGraph& g_;
  const core::Mapping& mapping_;
  const AppParams app_;
  Network net_;
  std::vector<int> task_of_proc_;
  std::vector<int> done_iters_;
  std::vector<char> computing_;
  std::vector<SimTime> nic_free_;
  std::vector<int> recv_count_;  // [task * iterations + iter]
  std::vector<double> iter_complete_;  // per-iteration finish time
  std::vector<int> iter_remaining_;    // tasks yet to compute each iter
};

}  // namespace

AppResult run_iterative_app(const graph::TaskGraph& g,
                            const topo::Topology& topo,
                            const core::Mapping& mapping,
                            const AppParams& app, const NetworkParams& net,
                            ServiceModel model,
                            const std::vector<DegradedLink>& degraded) {
  TOPOMAP_REQUIRE(core::is_one_to_one(mapping, topo),
                  "iterative app needs a one-to-one mapping");
  IterativeApp sim(g, topo, mapping, app, net, model);
  sim.degrade(degraded);
  return sim.run();
}

}  // namespace topomap::netsim
