// Discrete-event core for the interconnect simulator.
//
// A single time-ordered queue of small POD events.  Ties are broken by
// insertion sequence number so simulations are bit-reproducible regardless
// of floating-point coincidences.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace topomap::netsim {

/// Simulation time in microseconds.
using SimTime = double;

struct Event {
  SimTime time = 0.0;
  std::uint64_t seq = 0;  // FIFO tie-break
  enum class Kind : std::uint8_t {
    kHop,       ///< a message/packet head reaches hop `hop` of message `id`
    kDelivery,  ///< message `id` fully received at its destination
    kApp,       ///< application-level event with opaque payload `id`
  } kind = Kind::kApp;
  std::uint64_t id = 0;  ///< message index or app payload
  std::uint32_t hop = 0; ///< hop index within the route (kHop only)
  std::uint32_t sub = 0; ///< packet index within the message (kHop only)
};

class EventQueue {
 public:
  void push(SimTime time, Event::Kind kind, std::uint64_t id,
            std::uint32_t hop = 0, std::uint32_t sub = 0) {
    heap_.push(Event{time, next_seq_++, kind, id, hop, sub});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  const Event& top() const { return heap_.top(); }

  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace topomap::netsim
