file(REMOVE_RECURSE
  "CMakeFiles/fig1_2_mesh2d_torus2d.dir/fig1_2_mesh2d_torus2d.cpp.o"
  "CMakeFiles/fig1_2_mesh2d_torus2d.dir/fig1_2_mesh2d_torus2d.cpp.o.d"
  "fig1_2_mesh2d_torus2d"
  "fig1_2_mesh2d_torus2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_2_mesh2d_torus2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
