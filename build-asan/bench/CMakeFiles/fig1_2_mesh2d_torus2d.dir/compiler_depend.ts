# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig1_2_mesh2d_torus2d.
