# Empty dependencies file for fig1_2_mesh2d_torus2d.
# This may be replaced when dependencies are built.
