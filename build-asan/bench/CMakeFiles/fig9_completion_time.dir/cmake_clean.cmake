file(REMOVE_RECURSE
  "CMakeFiles/fig9_completion_time.dir/fig9_completion_time.cpp.o"
  "CMakeFiles/fig9_completion_time.dir/fig9_completion_time.cpp.o.d"
  "fig9_completion_time"
  "fig9_completion_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_completion_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
