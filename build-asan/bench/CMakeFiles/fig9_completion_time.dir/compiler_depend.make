# Empty compiler generated dependencies file for fig9_completion_time.
# This may be replaced when dependencies are built.
