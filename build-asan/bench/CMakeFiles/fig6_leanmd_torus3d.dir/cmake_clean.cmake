file(REMOVE_RECURSE
  "CMakeFiles/fig6_leanmd_torus3d.dir/fig6_leanmd_torus3d.cpp.o"
  "CMakeFiles/fig6_leanmd_torus3d.dir/fig6_leanmd_torus3d.cpp.o.d"
  "fig6_leanmd_torus3d"
  "fig6_leanmd_torus3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_leanmd_torus3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
