# Empty compiler generated dependencies file for fig6_leanmd_torus3d.
# This may be replaced when dependencies are built.
