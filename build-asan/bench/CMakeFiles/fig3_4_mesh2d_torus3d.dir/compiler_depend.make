# Empty compiler generated dependencies file for fig3_4_mesh2d_torus3d.
# This may be replaced when dependencies are built.
