file(REMOVE_RECURSE
  "CMakeFiles/fig3_4_mesh2d_torus3d.dir/fig3_4_mesh2d_torus3d.cpp.o"
  "CMakeFiles/fig3_4_mesh2d_torus3d.dir/fig3_4_mesh2d_torus3d.cpp.o.d"
  "fig3_4_mesh2d_torus3d"
  "fig3_4_mesh2d_torus3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_4_mesh2d_torus3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
