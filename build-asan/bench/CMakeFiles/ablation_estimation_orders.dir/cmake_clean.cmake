file(REMOVE_RECURSE
  "CMakeFiles/ablation_estimation_orders.dir/ablation_estimation_orders.cpp.o"
  "CMakeFiles/ablation_estimation_orders.dir/ablation_estimation_orders.cpp.o.d"
  "ablation_estimation_orders"
  "ablation_estimation_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_estimation_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
