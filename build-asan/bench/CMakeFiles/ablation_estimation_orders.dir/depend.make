# Empty dependencies file for ablation_estimation_orders.
# This may be replaced when dependencies are built.
