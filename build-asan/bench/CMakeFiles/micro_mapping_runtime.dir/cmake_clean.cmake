file(REMOVE_RECURSE
  "CMakeFiles/micro_mapping_runtime.dir/micro_mapping_runtime.cpp.o"
  "CMakeFiles/micro_mapping_runtime.dir/micro_mapping_runtime.cpp.o.d"
  "micro_mapping_runtime"
  "micro_mapping_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mapping_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
