file(REMOVE_RECURSE
  "CMakeFiles/ablation_physical_opt.dir/ablation_physical_opt.cpp.o"
  "CMakeFiles/ablation_physical_opt.dir/ablation_physical_opt.cpp.o.d"
  "ablation_physical_opt"
  "ablation_physical_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_physical_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
