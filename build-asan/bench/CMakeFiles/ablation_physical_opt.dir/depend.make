# Empty dependencies file for ablation_physical_opt.
# This may be replaced when dependencies are built.
