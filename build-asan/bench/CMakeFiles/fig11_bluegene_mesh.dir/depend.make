# Empty dependencies file for fig11_bluegene_mesh.
# This may be replaced when dependencies are built.
