file(REMOVE_RECURSE
  "CMakeFiles/fig11_bluegene_mesh.dir/fig11_bluegene_mesh.cpp.o"
  "CMakeFiles/fig11_bluegene_mesh.dir/fig11_bluegene_mesh.cpp.o.d"
  "fig11_bluegene_mesh"
  "fig11_bluegene_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bluegene_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
