file(REMOVE_RECURSE
  "CMakeFiles/ablation_netsim_models.dir/ablation_netsim_models.cpp.o"
  "CMakeFiles/ablation_netsim_models.dir/ablation_netsim_models.cpp.o.d"
  "ablation_netsim_models"
  "ablation_netsim_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_netsim_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
