# Empty dependencies file for ablation_netsim_models.
# This may be replaced when dependencies are built.
