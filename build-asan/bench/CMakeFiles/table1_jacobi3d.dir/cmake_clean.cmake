file(REMOVE_RECURSE
  "CMakeFiles/table1_jacobi3d.dir/table1_jacobi3d.cpp.o"
  "CMakeFiles/table1_jacobi3d.dir/table1_jacobi3d.cpp.o.d"
  "table1_jacobi3d"
  "table1_jacobi3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_jacobi3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
