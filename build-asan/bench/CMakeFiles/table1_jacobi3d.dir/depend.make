# Empty dependencies file for table1_jacobi3d.
# This may be replaced when dependencies are built.
