# Empty dependencies file for fig5_leanmd_torus2d.
# This may be replaced when dependencies are built.
