# Empty compiler generated dependencies file for ablation_dynamic_remap.
# This may be replaced when dependencies are built.
