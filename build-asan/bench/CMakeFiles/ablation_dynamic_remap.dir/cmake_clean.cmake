file(REMOVE_RECURSE
  "CMakeFiles/ablation_dynamic_remap.dir/ablation_dynamic_remap.cpp.o"
  "CMakeFiles/ablation_dynamic_remap.dir/ablation_dynamic_remap.cpp.o.d"
  "ablation_dynamic_remap"
  "ablation_dynamic_remap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dynamic_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
