# Empty dependencies file for ablation_strategy_shootout.
# This may be replaced when dependencies are built.
