file(REMOVE_RECURSE
  "CMakeFiles/ablation_strategy_shootout.dir/ablation_strategy_shootout.cpp.o"
  "CMakeFiles/ablation_strategy_shootout.dir/ablation_strategy_shootout.cpp.o.d"
  "ablation_strategy_shootout"
  "ablation_strategy_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_strategy_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
