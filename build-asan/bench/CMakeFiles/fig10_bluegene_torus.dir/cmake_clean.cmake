file(REMOVE_RECURSE
  "CMakeFiles/fig10_bluegene_torus.dir/fig10_bluegene_torus.cpp.o"
  "CMakeFiles/fig10_bluegene_torus.dir/fig10_bluegene_torus.cpp.o.d"
  "fig10_bluegene_torus"
  "fig10_bluegene_torus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_bluegene_torus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
