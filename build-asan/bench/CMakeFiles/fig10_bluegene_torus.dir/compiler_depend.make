# Empty compiler generated dependencies file for fig10_bluegene_torus.
# This may be replaced when dependencies are built.
