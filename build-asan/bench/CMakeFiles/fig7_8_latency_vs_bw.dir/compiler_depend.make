# Empty compiler generated dependencies file for fig7_8_latency_vs_bw.
# This may be replaced when dependencies are built.
