file(REMOVE_RECURSE
  "CMakeFiles/fig7_8_latency_vs_bw.dir/fig7_8_latency_vs_bw.cpp.o"
  "CMakeFiles/fig7_8_latency_vs_bw.dir/fig7_8_latency_vs_bw.cpp.o.d"
  "fig7_8_latency_vs_bw"
  "fig7_8_latency_vs_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_8_latency_vs_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
