file(REMOVE_RECURSE
  "libtopomap_partition.a"
)
