# Empty dependencies file for topomap_partition.
# This may be replaced when dependencies are built.
