file(REMOVE_RECURSE
  "CMakeFiles/topomap_partition.dir/greedy_partition.cpp.o"
  "CMakeFiles/topomap_partition.dir/greedy_partition.cpp.o.d"
  "CMakeFiles/topomap_partition.dir/multilevel.cpp.o"
  "CMakeFiles/topomap_partition.dir/multilevel.cpp.o.d"
  "CMakeFiles/topomap_partition.dir/partition.cpp.o"
  "CMakeFiles/topomap_partition.dir/partition.cpp.o.d"
  "libtopomap_partition.a"
  "libtopomap_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topomap_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
