# Empty dependencies file for topomap_graph.
# This may be replaced when dependencies are built.
