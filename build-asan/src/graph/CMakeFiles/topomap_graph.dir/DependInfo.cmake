
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builders.cpp" "src/graph/CMakeFiles/topomap_graph.dir/builders.cpp.o" "gcc" "src/graph/CMakeFiles/topomap_graph.dir/builders.cpp.o.d"
  "/root/repo/src/graph/factory.cpp" "src/graph/CMakeFiles/topomap_graph.dir/factory.cpp.o" "gcc" "src/graph/CMakeFiles/topomap_graph.dir/factory.cpp.o.d"
  "/root/repo/src/graph/quotient.cpp" "src/graph/CMakeFiles/topomap_graph.dir/quotient.cpp.o" "gcc" "src/graph/CMakeFiles/topomap_graph.dir/quotient.cpp.o.d"
  "/root/repo/src/graph/synthetic_md.cpp" "src/graph/CMakeFiles/topomap_graph.dir/synthetic_md.cpp.o" "gcc" "src/graph/CMakeFiles/topomap_graph.dir/synthetic_md.cpp.o.d"
  "/root/repo/src/graph/task_graph.cpp" "src/graph/CMakeFiles/topomap_graph.dir/task_graph.cpp.o" "gcc" "src/graph/CMakeFiles/topomap_graph.dir/task_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/support/CMakeFiles/topomap_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
