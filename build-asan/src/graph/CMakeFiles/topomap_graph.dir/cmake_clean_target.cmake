file(REMOVE_RECURSE
  "libtopomap_graph.a"
)
