file(REMOVE_RECURSE
  "CMakeFiles/topomap_graph.dir/builders.cpp.o"
  "CMakeFiles/topomap_graph.dir/builders.cpp.o.d"
  "CMakeFiles/topomap_graph.dir/factory.cpp.o"
  "CMakeFiles/topomap_graph.dir/factory.cpp.o.d"
  "CMakeFiles/topomap_graph.dir/quotient.cpp.o"
  "CMakeFiles/topomap_graph.dir/quotient.cpp.o.d"
  "CMakeFiles/topomap_graph.dir/synthetic_md.cpp.o"
  "CMakeFiles/topomap_graph.dir/synthetic_md.cpp.o.d"
  "CMakeFiles/topomap_graph.dir/task_graph.cpp.o"
  "CMakeFiles/topomap_graph.dir/task_graph.cpp.o.d"
  "libtopomap_graph.a"
  "libtopomap_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topomap_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
