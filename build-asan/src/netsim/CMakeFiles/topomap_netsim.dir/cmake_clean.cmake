file(REMOVE_RECURSE
  "CMakeFiles/topomap_netsim.dir/app.cpp.o"
  "CMakeFiles/topomap_netsim.dir/app.cpp.o.d"
  "CMakeFiles/topomap_netsim.dir/network.cpp.o"
  "CMakeFiles/topomap_netsim.dir/network.cpp.o.d"
  "libtopomap_netsim.a"
  "libtopomap_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topomap_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
