file(REMOVE_RECURSE
  "libtopomap_netsim.a"
)
