# Empty dependencies file for topomap_netsim.
# This may be replaced when dependencies are built.
