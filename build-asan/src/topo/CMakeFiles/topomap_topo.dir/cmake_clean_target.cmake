file(REMOVE_RECURSE
  "libtopomap_topo.a"
)
