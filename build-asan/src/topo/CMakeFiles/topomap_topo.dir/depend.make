# Empty dependencies file for topomap_topo.
# This may be replaced when dependencies are built.
