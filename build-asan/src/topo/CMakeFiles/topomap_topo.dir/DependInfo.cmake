
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/distance_cache.cpp" "src/topo/CMakeFiles/topomap_topo.dir/distance_cache.cpp.o" "gcc" "src/topo/CMakeFiles/topomap_topo.dir/distance_cache.cpp.o.d"
  "/root/repo/src/topo/dragonfly.cpp" "src/topo/CMakeFiles/topomap_topo.dir/dragonfly.cpp.o" "gcc" "src/topo/CMakeFiles/topomap_topo.dir/dragonfly.cpp.o.d"
  "/root/repo/src/topo/factory.cpp" "src/topo/CMakeFiles/topomap_topo.dir/factory.cpp.o" "gcc" "src/topo/CMakeFiles/topomap_topo.dir/factory.cpp.o.d"
  "/root/repo/src/topo/fat_tree.cpp" "src/topo/CMakeFiles/topomap_topo.dir/fat_tree.cpp.o" "gcc" "src/topo/CMakeFiles/topomap_topo.dir/fat_tree.cpp.o.d"
  "/root/repo/src/topo/graph_topology.cpp" "src/topo/CMakeFiles/topomap_topo.dir/graph_topology.cpp.o" "gcc" "src/topo/CMakeFiles/topomap_topo.dir/graph_topology.cpp.o.d"
  "/root/repo/src/topo/hypercube.cpp" "src/topo/CMakeFiles/topomap_topo.dir/hypercube.cpp.o" "gcc" "src/topo/CMakeFiles/topomap_topo.dir/hypercube.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/topo/CMakeFiles/topomap_topo.dir/topology.cpp.o" "gcc" "src/topo/CMakeFiles/topomap_topo.dir/topology.cpp.o.d"
  "/root/repo/src/topo/torus_mesh.cpp" "src/topo/CMakeFiles/topomap_topo.dir/torus_mesh.cpp.o" "gcc" "src/topo/CMakeFiles/topomap_topo.dir/torus_mesh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/support/CMakeFiles/topomap_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
