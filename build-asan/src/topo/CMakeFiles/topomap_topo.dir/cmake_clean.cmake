file(REMOVE_RECURSE
  "CMakeFiles/topomap_topo.dir/distance_cache.cpp.o"
  "CMakeFiles/topomap_topo.dir/distance_cache.cpp.o.d"
  "CMakeFiles/topomap_topo.dir/dragonfly.cpp.o"
  "CMakeFiles/topomap_topo.dir/dragonfly.cpp.o.d"
  "CMakeFiles/topomap_topo.dir/factory.cpp.o"
  "CMakeFiles/topomap_topo.dir/factory.cpp.o.d"
  "CMakeFiles/topomap_topo.dir/fat_tree.cpp.o"
  "CMakeFiles/topomap_topo.dir/fat_tree.cpp.o.d"
  "CMakeFiles/topomap_topo.dir/graph_topology.cpp.o"
  "CMakeFiles/topomap_topo.dir/graph_topology.cpp.o.d"
  "CMakeFiles/topomap_topo.dir/hypercube.cpp.o"
  "CMakeFiles/topomap_topo.dir/hypercube.cpp.o.d"
  "CMakeFiles/topomap_topo.dir/topology.cpp.o"
  "CMakeFiles/topomap_topo.dir/topology.cpp.o.d"
  "CMakeFiles/topomap_topo.dir/torus_mesh.cpp.o"
  "CMakeFiles/topomap_topo.dir/torus_mesh.cpp.o.d"
  "libtopomap_topo.a"
  "libtopomap_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topomap_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
