
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/apps.cpp" "src/runtime/CMakeFiles/topomap_runtime.dir/apps.cpp.o" "gcc" "src/runtime/CMakeFiles/topomap_runtime.dir/apps.cpp.o.d"
  "/root/repo/src/runtime/chare.cpp" "src/runtime/CMakeFiles/topomap_runtime.dir/chare.cpp.o" "gcc" "src/runtime/CMakeFiles/topomap_runtime.dir/chare.cpp.o.d"
  "/root/repo/src/runtime/dynamic_lb.cpp" "src/runtime/CMakeFiles/topomap_runtime.dir/dynamic_lb.cpp.o" "gcc" "src/runtime/CMakeFiles/topomap_runtime.dir/dynamic_lb.cpp.o.d"
  "/root/repo/src/runtime/lb_database.cpp" "src/runtime/CMakeFiles/topomap_runtime.dir/lb_database.cpp.o" "gcc" "src/runtime/CMakeFiles/topomap_runtime.dir/lb_database.cpp.o.d"
  "/root/repo/src/runtime/lb_manager.cpp" "src/runtime/CMakeFiles/topomap_runtime.dir/lb_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/topomap_runtime.dir/lb_manager.cpp.o.d"
  "/root/repo/src/runtime/rank_reorder.cpp" "src/runtime/CMakeFiles/topomap_runtime.dir/rank_reorder.cpp.o" "gcc" "src/runtime/CMakeFiles/topomap_runtime.dir/rank_reorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/topomap_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/partition/CMakeFiles/topomap_partition.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/graph/CMakeFiles/topomap_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/topo/CMakeFiles/topomap_topo.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/support/CMakeFiles/topomap_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
