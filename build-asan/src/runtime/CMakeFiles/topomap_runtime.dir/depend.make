# Empty dependencies file for topomap_runtime.
# This may be replaced when dependencies are built.
