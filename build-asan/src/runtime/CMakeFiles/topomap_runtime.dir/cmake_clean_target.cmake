file(REMOVE_RECURSE
  "libtopomap_runtime.a"
)
