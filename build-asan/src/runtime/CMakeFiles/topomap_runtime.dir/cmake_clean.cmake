file(REMOVE_RECURSE
  "CMakeFiles/topomap_runtime.dir/apps.cpp.o"
  "CMakeFiles/topomap_runtime.dir/apps.cpp.o.d"
  "CMakeFiles/topomap_runtime.dir/chare.cpp.o"
  "CMakeFiles/topomap_runtime.dir/chare.cpp.o.d"
  "CMakeFiles/topomap_runtime.dir/dynamic_lb.cpp.o"
  "CMakeFiles/topomap_runtime.dir/dynamic_lb.cpp.o.d"
  "CMakeFiles/topomap_runtime.dir/lb_database.cpp.o"
  "CMakeFiles/topomap_runtime.dir/lb_database.cpp.o.d"
  "CMakeFiles/topomap_runtime.dir/lb_manager.cpp.o"
  "CMakeFiles/topomap_runtime.dir/lb_manager.cpp.o.d"
  "CMakeFiles/topomap_runtime.dir/rank_reorder.cpp.o"
  "CMakeFiles/topomap_runtime.dir/rank_reorder.cpp.o.d"
  "libtopomap_runtime.a"
  "libtopomap_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topomap_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
