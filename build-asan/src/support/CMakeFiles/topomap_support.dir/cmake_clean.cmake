file(REMOVE_RECURSE
  "CMakeFiles/topomap_support.dir/cli.cpp.o"
  "CMakeFiles/topomap_support.dir/cli.cpp.o.d"
  "CMakeFiles/topomap_support.dir/parallel.cpp.o"
  "CMakeFiles/topomap_support.dir/parallel.cpp.o.d"
  "CMakeFiles/topomap_support.dir/table.cpp.o"
  "CMakeFiles/topomap_support.dir/table.cpp.o.d"
  "libtopomap_support.a"
  "libtopomap_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topomap_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
