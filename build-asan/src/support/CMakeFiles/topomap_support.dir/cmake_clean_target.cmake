file(REMOVE_RECURSE
  "libtopomap_support.a"
)
