# Empty dependencies file for topomap_support.
# This may be replaced when dependencies are built.
