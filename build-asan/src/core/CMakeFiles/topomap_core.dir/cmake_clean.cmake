file(REMOVE_RECURSE
  "CMakeFiles/topomap_core.dir/annealing_lb.cpp.o"
  "CMakeFiles/topomap_core.dir/annealing_lb.cpp.o.d"
  "CMakeFiles/topomap_core.dir/baseline_lb.cpp.o"
  "CMakeFiles/topomap_core.dir/baseline_lb.cpp.o.d"
  "CMakeFiles/topomap_core.dir/factory.cpp.o"
  "CMakeFiles/topomap_core.dir/factory.cpp.o.d"
  "CMakeFiles/topomap_core.dir/link_refine.cpp.o"
  "CMakeFiles/topomap_core.dir/link_refine.cpp.o.d"
  "CMakeFiles/topomap_core.dir/mapping.cpp.o"
  "CMakeFiles/topomap_core.dir/mapping.cpp.o.d"
  "CMakeFiles/topomap_core.dir/metrics.cpp.o"
  "CMakeFiles/topomap_core.dir/metrics.cpp.o.d"
  "CMakeFiles/topomap_core.dir/recursive_map.cpp.o"
  "CMakeFiles/topomap_core.dir/recursive_map.cpp.o.d"
  "CMakeFiles/topomap_core.dir/refine_topo_lb.cpp.o"
  "CMakeFiles/topomap_core.dir/refine_topo_lb.cpp.o.d"
  "CMakeFiles/topomap_core.dir/topo_cent_lb.cpp.o"
  "CMakeFiles/topomap_core.dir/topo_cent_lb.cpp.o.d"
  "CMakeFiles/topomap_core.dir/topo_lb.cpp.o"
  "CMakeFiles/topomap_core.dir/topo_lb.cpp.o.d"
  "libtopomap_core.a"
  "libtopomap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topomap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
