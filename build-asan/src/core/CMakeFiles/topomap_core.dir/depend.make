# Empty dependencies file for topomap_core.
# This may be replaced when dependencies are built.
