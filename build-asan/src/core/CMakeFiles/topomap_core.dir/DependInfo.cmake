
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/annealing_lb.cpp" "src/core/CMakeFiles/topomap_core.dir/annealing_lb.cpp.o" "gcc" "src/core/CMakeFiles/topomap_core.dir/annealing_lb.cpp.o.d"
  "/root/repo/src/core/baseline_lb.cpp" "src/core/CMakeFiles/topomap_core.dir/baseline_lb.cpp.o" "gcc" "src/core/CMakeFiles/topomap_core.dir/baseline_lb.cpp.o.d"
  "/root/repo/src/core/factory.cpp" "src/core/CMakeFiles/topomap_core.dir/factory.cpp.o" "gcc" "src/core/CMakeFiles/topomap_core.dir/factory.cpp.o.d"
  "/root/repo/src/core/link_refine.cpp" "src/core/CMakeFiles/topomap_core.dir/link_refine.cpp.o" "gcc" "src/core/CMakeFiles/topomap_core.dir/link_refine.cpp.o.d"
  "/root/repo/src/core/mapping.cpp" "src/core/CMakeFiles/topomap_core.dir/mapping.cpp.o" "gcc" "src/core/CMakeFiles/topomap_core.dir/mapping.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/topomap_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/topomap_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/recursive_map.cpp" "src/core/CMakeFiles/topomap_core.dir/recursive_map.cpp.o" "gcc" "src/core/CMakeFiles/topomap_core.dir/recursive_map.cpp.o.d"
  "/root/repo/src/core/refine_topo_lb.cpp" "src/core/CMakeFiles/topomap_core.dir/refine_topo_lb.cpp.o" "gcc" "src/core/CMakeFiles/topomap_core.dir/refine_topo_lb.cpp.o.d"
  "/root/repo/src/core/topo_cent_lb.cpp" "src/core/CMakeFiles/topomap_core.dir/topo_cent_lb.cpp.o" "gcc" "src/core/CMakeFiles/topomap_core.dir/topo_cent_lb.cpp.o.d"
  "/root/repo/src/core/topo_lb.cpp" "src/core/CMakeFiles/topomap_core.dir/topo_lb.cpp.o" "gcc" "src/core/CMakeFiles/topomap_core.dir/topo_lb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/partition/CMakeFiles/topomap_partition.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/graph/CMakeFiles/topomap_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/topo/CMakeFiles/topomap_topo.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/support/CMakeFiles/topomap_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
