file(REMOVE_RECURSE
  "libtopomap_core.a"
)
