# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/test_support[1]_include.cmake")
include("/root/repo/build-asan/tests/test_parallel[1]_include.cmake")
include("/root/repo/build-asan/tests/test_topo[1]_include.cmake")
include("/root/repo/build-asan/tests/test_distance_cache[1]_include.cmake")
include("/root/repo/build-asan/tests/test_graph[1]_include.cmake")
include("/root/repo/build-asan/tests/test_core_metrics[1]_include.cmake")
include("/root/repo/build-asan/tests/test_core_strategies[1]_include.cmake")
include("/root/repo/build-asan/tests/test_partition[1]_include.cmake")
include("/root/repo/build-asan/tests/test_netsim[1]_include.cmake")
include("/root/repo/build-asan/tests/test_runtime[1]_include.cmake")
include("/root/repo/build-asan/tests/test_extensions[1]_include.cmake")
include("/root/repo/build-asan/tests/test_rank_reorder[1]_include.cmake")
include("/root/repo/build-asan/tests/test_properties[1]_include.cmake")
include("/root/repo/build-asan/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build-asan/tests/test_adaptive_routing[1]_include.cmake")
include("/root/repo/build-asan/tests/test_graph_factory[1]_include.cmake")
include("/root/repo/build-asan/tests/test_runtime_placement[1]_include.cmake")
include("/root/repo/build-asan/tests/test_edge_cases[1]_include.cmake")
