file(REMOVE_RECURSE
  "CMakeFiles/test_core_strategies.dir/test_core_strategies.cpp.o"
  "CMakeFiles/test_core_strategies.dir/test_core_strategies.cpp.o.d"
  "test_core_strategies"
  "test_core_strategies.pdb"
  "test_core_strategies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
