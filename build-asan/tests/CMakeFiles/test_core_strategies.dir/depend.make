# Empty dependencies file for test_core_strategies.
# This may be replaced when dependencies are built.
