file(REMOVE_RECURSE
  "CMakeFiles/test_distance_cache.dir/test_distance_cache.cpp.o"
  "CMakeFiles/test_distance_cache.dir/test_distance_cache.cpp.o.d"
  "test_distance_cache"
  "test_distance_cache.pdb"
  "test_distance_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distance_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
