# Empty compiler generated dependencies file for test_distance_cache.
# This may be replaced when dependencies are built.
