# Empty dependencies file for test_rank_reorder.
# This may be replaced when dependencies are built.
