file(REMOVE_RECURSE
  "CMakeFiles/test_rank_reorder.dir/test_rank_reorder.cpp.o"
  "CMakeFiles/test_rank_reorder.dir/test_rank_reorder.cpp.o.d"
  "test_rank_reorder"
  "test_rank_reorder.pdb"
  "test_rank_reorder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rank_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
