# Empty compiler generated dependencies file for test_runtime_placement.
# This may be replaced when dependencies are built.
