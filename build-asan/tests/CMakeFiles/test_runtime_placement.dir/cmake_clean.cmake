file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_placement.dir/test_runtime_placement.cpp.o"
  "CMakeFiles/test_runtime_placement.dir/test_runtime_placement.cpp.o.d"
  "test_runtime_placement"
  "test_runtime_placement.pdb"
  "test_runtime_placement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
