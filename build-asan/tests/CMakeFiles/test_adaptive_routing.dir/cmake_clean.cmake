file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive_routing.dir/test_adaptive_routing.cpp.o"
  "CMakeFiles/test_adaptive_routing.dir/test_adaptive_routing.cpp.o.d"
  "test_adaptive_routing"
  "test_adaptive_routing.pdb"
  "test_adaptive_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
