# Empty compiler generated dependencies file for test_adaptive_routing.
# This may be replaced when dependencies are built.
