# Empty dependencies file for test_graph_factory.
# This may be replaced when dependencies are built.
