file(REMOVE_RECURSE
  "CMakeFiles/test_graph_factory.dir/test_graph_factory.cpp.o"
  "CMakeFiles/test_graph_factory.dir/test_graph_factory.cpp.o.d"
  "test_graph_factory"
  "test_graph_factory.pdb"
  "test_graph_factory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_factory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
