# Empty dependencies file for topomap_cli.
# This may be replaced when dependencies are built.
