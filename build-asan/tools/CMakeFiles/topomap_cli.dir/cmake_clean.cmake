file(REMOVE_RECURSE
  "CMakeFiles/topomap_cli.dir/topomap_cli.cpp.o"
  "CMakeFiles/topomap_cli.dir/topomap_cli.cpp.o.d"
  "topomap"
  "topomap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topomap_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
