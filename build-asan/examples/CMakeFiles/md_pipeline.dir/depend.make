# Empty dependencies file for md_pipeline.
# This may be replaced when dependencies are built.
