file(REMOVE_RECURSE
  "CMakeFiles/md_pipeline.dir/md_pipeline.cpp.o"
  "CMakeFiles/md_pipeline.dir/md_pipeline.cpp.o.d"
  "md_pipeline"
  "md_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
