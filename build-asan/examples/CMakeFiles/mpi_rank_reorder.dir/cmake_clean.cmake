file(REMOVE_RECURSE
  "CMakeFiles/mpi_rank_reorder.dir/mpi_rank_reorder.cpp.o"
  "CMakeFiles/mpi_rank_reorder.dir/mpi_rank_reorder.cpp.o.d"
  "mpi_rank_reorder"
  "mpi_rank_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_rank_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
