# Empty dependencies file for mpi_rank_reorder.
# This may be replaced when dependencies are built.
