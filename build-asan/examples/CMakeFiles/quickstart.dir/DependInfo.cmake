
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/runtime/CMakeFiles/topomap_runtime.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/netsim/CMakeFiles/topomap_netsim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/topomap_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/partition/CMakeFiles/topomap_partition.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/graph/CMakeFiles/topomap_graph.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/topo/CMakeFiles/topomap_topo.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/support/CMakeFiles/topomap_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
