file(REMOVE_RECURSE
  "CMakeFiles/jacobi_simulation.dir/jacobi_simulation.cpp.o"
  "CMakeFiles/jacobi_simulation.dir/jacobi_simulation.cpp.o.d"
  "jacobi_simulation"
  "jacobi_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacobi_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
