# Empty compiler generated dependencies file for jacobi_simulation.
# This may be replaced when dependencies are built.
